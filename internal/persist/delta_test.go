package persist

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"hash/crc32"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/stream"
)

// versionedFake is a minimal StructureVersioner learner with a payload
// large enough to exercise the rolling block diff: a slab of bytes of
// which each "structural change" rewrites only a small window.
type versionedFake struct {
	schema  stream.Schema
	version uint64
	state   []byte
}

func (f *versionedFake) Learn(b stream.Batch)    {}
func (f *versionedFake) Predict(x []float64) int { return 0 }
func (f *versionedFake) Name() string            { return "persist-test-versioned" }
func (f *versionedFake) Schema() stream.Schema   { return f.schema }
func (f *versionedFake) Complexity() model.Complexity {
	return model.Complexity{Leaves: 1}
}
func (f *versionedFake) StructureVersion() uint64 { return f.version }
func (f *versionedFake) SaveState(w io.Writer) error {
	return gob.NewEncoder(w).Encode(struct {
		Version uint64
		State   []byte
	}{f.version, f.state})
}

func init() {
	registry.RegisterLoader("persist-test-versioned", func(schema stream.Schema, p registry.Params, r io.Reader) (model.Classifier, error) {
		var st struct {
			Version uint64
			State   []byte
		}
		if err := gob.NewDecoder(r).Decode(&st); err != nil {
			return nil, err
		}
		return &versionedFake{schema: schema, version: st.Version, state: st.State}, nil
	})
}

// newVersionedFake builds the fake with a deterministic 64KiB slab.
func newVersionedFake() *versionedFake {
	rng := rand.New(rand.NewSource(7))
	state := make([]byte, 64<<10)
	rng.Read(state)
	return &versionedFake{schema: testSchema(), state: state}
}

// mutate applies one "local structural change": bump the version and
// rewrite a 256-byte window.
func (f *versionedFake) mutate(rng *rand.Rand) {
	f.version++
	off := rng.Intn(len(f.state) - 256)
	rng.Read(f.state[off : off+256])
}

func saved(t *testing.T, f *versionedFake) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDeltaRoundTripByteIdentical(t *testing.T) {
	f := newVersionedFake()
	rng := rand.New(rand.NewSource(11))
	base := saved(t, f)
	f.mutate(rng)
	target := saved(t, f)

	d, err := MakeDelta(base, target)
	if err != nil {
		t.Fatal(err)
	}
	if d.Header.BaseVersion != 0 || d.Header.TargetVersion != 1 {
		t.Fatalf("delta keyed %d→%d, want 0→1", d.Header.BaseVersion, d.Header.TargetVersion)
	}
	// A local change must produce a small delta: the 64KiB slab moved by
	// 256 bytes, so the patch should be well under a tenth of the full
	// envelope.
	if 10*len(d.Patch) > len(target) {
		t.Fatalf("patch is %d bytes for a %d byte envelope: no structural sharing", len(d.Patch), len(target))
	}

	// Wire round trip, then apply: byte-identical to the full save.
	var buf bytes.Buffer
	if err := WriteDelta(&buf, d); err != nil {
		t.Fatal(err)
	}
	rd, err := ReadDelta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rd.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, target) {
		t.Fatal("base+delta is not byte-identical to the full save")
	}
	// And the reconstruction loads.
	if _, err := Load(bytes.NewReader(got)); err != nil {
		t.Fatal(err)
	}
}

// chain builds a base envelope plus n consecutive deltas.
func chain(t *testing.T, n int) (base []byte, deltas []*Delta, head []byte) {
	t.Helper()
	f := newVersionedFake()
	rng := rand.New(rand.NewSource(13))
	base = saved(t, f)
	prev := base
	for i := 0; i < n; i++ {
		f.mutate(rng)
		next := saved(t, f)
		d, err := MakeDelta(prev, next)
		if err != nil {
			t.Fatal(err)
		}
		deltas = append(deltas, d)
		prev = next
	}
	return base, deltas, prev
}

func TestDeltaChainByteIdentical(t *testing.T) {
	base, deltas, head := chain(t, 4)
	got, err := ApplyChain(base, deltas...)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, head) {
		t.Fatal("base+chain is not byte-identical to the head full save")
	}
}

func TestDeltaChainOutOfOrderRejected(t *testing.T) {
	base, deltas, _ := chain(t, 3)
	swapped := []*Delta{deltas[0], deltas[2], deltas[1]}
	_, err := ApplyChain(base, swapped...)
	if err == nil {
		t.Fatal("out-of-order chain accepted")
	}
	if !strings.Contains(err.Error(), "version gap") && !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("undescriptive error: %v", err)
	}
}

func TestDeltaChainVersionGapRejected(t *testing.T) {
	base, deltas, _ := chain(t, 3)
	gapped := []*Delta{deltas[0], deltas[2]} // skip 1→2
	_, err := ApplyChain(base, gapped...)
	if err == nil {
		t.Fatal("gapped chain accepted")
	}
	if !strings.Contains(err.Error(), "version gap") {
		t.Fatalf("undescriptive error: %v", err)
	}

	// A chain that does not start at the base's version is also a gap.
	_, err = ApplyChain(base, deltas[1])
	if err == nil {
		t.Fatal("chain starting past the base accepted")
	}
	if !strings.Contains(err.Error(), "version gap") {
		t.Fatalf("undescriptive error: %v", err)
	}
}

func TestDeltaWrongBaseRejected(t *testing.T) {
	base, deltas, _ := chain(t, 2)
	// deltas[1] was computed against base+deltas[0], not base.
	_, err := deltas[1].Apply(base)
	if err == nil {
		t.Fatal("wrong base accepted")
	}
	if !strings.Contains(err.Error(), "not the envelope it was computed against") {
		t.Fatalf("undescriptive error: %v", err)
	}

	// A bit flip in the right base is also rejected before patching.
	flipped := append([]byte(nil), base...)
	flipped[len(flipped)/2] ^= 0x40
	_, err = deltas[0].Apply(flipped)
	if err == nil {
		t.Fatal("corrupt base accepted")
	}
}

func TestDeltaTruncatedRejected(t *testing.T) {
	base, deltas, _ := chain(t, 1)
	var buf bytes.Buffer
	if err := WriteDelta(&buf, deltas[0]); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	for _, cut := range []int{4, 10, len(wire) / 2, len(wire) - 1} {
		if _, err := ReadDelta(bytes.NewReader(wire[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		} else if !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("undescriptive error at cut %d: %v", cut, err)
		}
	}

	// A corrupted patch body fails the patch checksum.
	corrupt := append([]byte(nil), wire...)
	corrupt[len(corrupt)-1] ^= 0x01
	if _, err := ReadDelta(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt patch accepted")
	} else if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("undescriptive error: %v", err)
	}
	_ = base
}

func TestDeltaModelMismatchRejected(t *testing.T) {
	f := newVersionedFake()
	base := saved(t, f)
	other := savedFake(t)
	if _, err := MakeDelta(base, other); err == nil {
		t.Fatal("cross-model delta accepted")
	} else if !strings.Contains(err.Error(), "disagree on model") {
		t.Fatalf("undescriptive error: %v", err)
	}
}

func TestDeltaStructVersionInHeader(t *testing.T) {
	f := newVersionedFake()
	f.version = 9
	raw := saved(t, f)
	_, h, err := ReadRaw(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasStructVersion || h.StructVersion != 9 {
		t.Fatalf("header version = (%v, %d), want (true, 9)", h.HasStructVersion, h.StructVersion)
	}
	// The versionless fake reports none.
	_, h2, err := ReadRaw(bytes.NewReader(savedFake(t)))
	if err != nil {
		t.Fatal(err)
	}
	if h2.HasStructVersion {
		t.Fatal("versionless model claims a structure version")
	}
}

func TestDeltaSniff(t *testing.T) {
	_, deltas, _ := chain(t, 1)
	var buf bytes.Buffer
	if err := WriteDelta(&buf, deltas[0]); err != nil {
		t.Fatal(err)
	}
	if crc32.ChecksumIEEE(buf.Bytes()) == 0 {
		t.Fatal("empty wire")
	}
	br := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	if !SniffDelta(br) {
		t.Fatal("SniffDelta missed a delta envelope")
	}
	if SniffEnvelope(br) {
		t.Fatal("SniffEnvelope claimed a delta envelope")
	}
}
