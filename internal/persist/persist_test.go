package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"hash/crc32"
	"io"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/stream"
)

// fakeModel is a minimal external learner exercising the envelope
// contract without pulling in any real learner package.
type fakeModel struct {
	schema stream.Schema
	count  int
}

func (f *fakeModel) Learn(b stream.Batch)    { f.count += b.Len() }
func (f *fakeModel) Predict(x []float64) int { return f.count % f.schema.NumClasses }
func (f *fakeModel) Name() string            { return "persist-test-fake" }
func (f *fakeModel) Schema() stream.Schema   { return f.schema }
func (f *fakeModel) Complexity() model.Complexity {
	return model.Complexity{Leaves: 1, Params: float64(f.count)}
}
func (f *fakeModel) SaveState(w io.Writer) error {
	return gob.NewEncoder(w).Encode(f.count)
}
func (f *fakeModel) CheckpointParams() registry.Params {
	return registry.Params{Seed: 123}
}

func init() {
	registry.RegisterLoader("persist-test-fake", func(schema stream.Schema, p registry.Params, r io.Reader) (model.Classifier, error) {
		f := &fakeModel{schema: schema}
		if err := gob.NewDecoder(r).Decode(&f.count); err != nil {
			return nil, err
		}
		return f, nil
	})
}

func testSchema() stream.Schema {
	return stream.Schema{NumFeatures: 3, NumClasses: 2, Name: "persist-test"}
}

func savedFake(t *testing.T) []byte {
	t.Helper()
	f := &fakeModel{schema: testSchema(), count: 41}
	var buf bytes.Buffer
	if err := Save(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTripExternalModel(t *testing.T) {
	raw := savedFake(t)
	c, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	g, ok := c.(*fakeModel)
	if !ok {
		t.Fatalf("loaded %T", c)
	}
	if g.count != 41 || g.schema.NumFeatures != 3 || g.schema.NumClasses != 2 {
		t.Fatalf("state lost: %+v", g)
	}
	// The envelope itself is self-describing.
	env, err := ReadEnvelope(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if env.Header.Model != "persist-test-fake" || env.Header.Version != FormatVersion {
		t.Fatalf("header: %+v", env.Header)
	}
	if env.Header.Params.Seed != 123 {
		t.Fatalf("resolved params not embedded: %+v", env.Header.Params)
	}
	if env.Header.Schema.NumFeatures != 3 || env.Header.Schema.NumClasses != 2 || env.Header.Schema.Name != "persist-test" {
		t.Fatalf("schema not embedded: %+v", env.Header.Schema)
	}
}

func TestStackedEnvelopesConsumeExactBytes(t *testing.T) {
	// Two envelopes on one stream (the ShardedScorer layout) must load
	// back to back with no over-read.
	var buf bytes.Buffer
	a := &fakeModel{schema: testSchema(), count: 1}
	b := &fakeModel{schema: testSchema(), count: 2}
	if err := Save(&buf, a); err != nil {
		t.Fatal(err)
	}
	if err := Save(&buf, b); err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(buf.Bytes())
	la, err := Load(r)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := Load(r)
	if err != nil {
		t.Fatal(err)
	}
	if la.(*fakeModel).count != 1 || lb.(*fakeModel).count != 2 {
		t.Fatal("stacked envelopes mixed up")
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left unconsumed", r.Len())
	}
}

// rewriteHeader re-frames a valid envelope with a mutated header
// (re-checksumming is up to the mutator).
func rewriteHeader(t *testing.T, raw []byte, mutate func(*Header)) []byte {
	t.Helper()
	env, err := ReadEnvelope(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	h := env.Header
	mutate(&h)
	var hdr bytes.Buffer
	if err := gob.NewEncoder(&hdr).Encode(h); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	io.WriteString(&out, Magic)
	var hlen [4]byte
	binary.BigEndian.PutUint32(hlen[:], uint32(hdr.Len()))
	out.Write(hlen[:])
	out.Write(hdr.Bytes())
	out.Write(env.Payload)
	return out.Bytes()
}

func TestVersionSkewErrors(t *testing.T) {
	raw := savedFake(t)

	newer := rewriteHeader(t, raw, func(h *Header) { h.Version = FormatVersion + 7 })
	_, err := Load(bytes.NewReader(newer))
	if err == nil || !strings.Contains(err.Error(), "newer than this build") {
		t.Fatalf("future version error unhelpful: %v", err)
	}

	older := rewriteHeader(t, raw, func(h *Header) { h.Version = 1 })
	_, err = Load(bytes.NewReader(older))
	if err == nil || !strings.Contains(err.Error(), "LoadDMT") {
		t.Fatalf("legacy version error should point at LoadDMT: %v", err)
	}
}

func TestChecksumMismatchNamesTheProblem(t *testing.T) {
	raw := savedFake(t)
	bad := rewriteHeader(t, raw, func(h *Header) { h.PayloadCRC ^= 0xdeadbeef })
	_, err := Load(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("checksum error unhelpful: %v", err)
	}
}

func TestUnknownLoaderError(t *testing.T) {
	raw := rewriteHeader(t, savedFake(t), func(h *Header) { h.Model = "never-registered" })
	// Header rewrite keeps the payload CRC valid, so the failure is
	// attributed to the missing loader, not corruption.
	_, err := Load(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "no checkpoint loader registered") {
		t.Fatalf("unknown loader error unhelpful: %v", err)
	}
}

func TestImplausibleHeaderLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	io.WriteString(&buf, Magic)
	var hlen [4]byte
	binary.BigEndian.PutUint32(hlen[:], uint32(maxHeaderLen+1))
	buf.Write(hlen[:])
	if _, err := Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("implausible header length accepted")
	}
}

func TestSaveRequiresCheckpointerAndLoader(t *testing.T) {
	type plain struct{ model.Classifier }
	if err := Save(io.Discard, plain{&fakeModel{schema: testSchema()}}); err == nil {
		t.Fatal("Save accepted a non-Checkpointer")
	}
	// A Checkpointer whose name has no loader is rejected up front, so
	// unloadable checkpoints are never written.
	orphan := &orphanModel{fakeModel{schema: testSchema()}}
	if err := Save(io.Discard, orphan); err == nil || !strings.Contains(err.Error(), "no registered checkpoint loader") {
		t.Fatalf("orphan checkpointer error unhelpful: %v", err)
	}
}

type orphanModel struct{ fakeModel }

func (o *orphanModel) Name() string { return "persist-test-orphan" }

// ReadRaw returns the envelope's verbatim wire bytes — relayable and
// loadable as-is — plus the decoded header, consuming exactly one
// envelope even off a non-seekable stream (here: an io.Pipe standing in
// for an HTTP body).
func TestReadRawRelaysVerbatimBytes(t *testing.T) {
	raw := savedFake(t)
	second := savedFake(t)

	pr, pw := io.Pipe()
	go func() {
		pw.Write(raw)
		pw.Write(second)
		pw.Close()
	}()
	got, h, err := ReadRaw(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatal("ReadRaw bytes differ from the written envelope")
	}
	if h.Model != "persist-test-fake" || h.Version != FormatVersion {
		t.Fatalf("header: %+v", h)
	}
	// The relayed bytes load without touching the origin again.
	c, err := Load(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	if c.(*fakeModel).count != 41 {
		t.Fatal("relayed envelope lost state")
	}
	// Exactly one envelope was consumed: the next one still reads.
	if _, _, err := ReadRaw(pr); err != nil {
		t.Fatalf("second stacked envelope unreadable after ReadRaw: %v", err)
	}
}

// A corrupt envelope never comes back from ReadRaw — the relay cache can
// only ever hold validated bytes.
func TestReadRawRejectsCorruption(t *testing.T) {
	bad := rewriteHeader(t, savedFake(t), func(h *Header) { h.PayloadCRC ^= 1 })
	if raw, _, err := ReadRaw(bytes.NewReader(bad)); err == nil || raw != nil {
		t.Fatalf("corrupt envelope relayed: raw=%v err=%v", raw != nil, err)
	}
}

func TestPayloadCRCMatchesIEEE(t *testing.T) {
	raw := savedFake(t)
	env, err := ReadEnvelope(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if crc32.ChecksumIEEE(env.Payload) != env.Header.PayloadCRC {
		t.Fatal("header CRC does not cover the payload bytes")
	}
}
