// Package hoeffding implements the Very Fast Decision Tree (VFDT) of
// Domingos & Hulten [11] with binary numeric splits, information-gain (or
// Gini) merits, the Hoeffding bound split test, and three leaf modes:
// majority class ("VFDT (MC)"), Naive Bayes, and adaptive Naive Bayes
// ("VFDT (NBA)" [31]). The NodeStats type is shared with the adaptive
// Hoeffding tree (internal/hatada) and EFDT (internal/efdt) substrates.
package hoeffding

import (
	"math"
	"math/rand"

	"repro/internal/attrobs"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/nbayes"
	"repro/internal/split"
	"repro/internal/stream"
)

// LeafMode selects the leaf prediction strategy.
type LeafMode int

const (
	// MajorityClass predicts the most frequent class at the leaf.
	MajorityClass LeafMode = iota
	// NaiveBayes predicts with a Gaussian Naive Bayes model at the leaf.
	NaiveBayes
	// NaiveBayesAdaptive predicts with whichever of majority class and
	// Naive Bayes has been more accurate at this leaf so far [31].
	NaiveBayesAdaptive
)

// String returns the report label of the mode.
func (m LeafMode) String() string {
	switch m {
	case MajorityClass:
		return "MC"
	case NaiveBayes:
		return "NB"
	case NaiveBayesAdaptive:
		return "NBA"
	}
	return "?"
}

// Config collects the hyperparameters of the Hoeffding tree family. The
// defaults follow the scikit-multiflow configuration the paper evaluates
// (Section VI-C): delta 1e-7, tie threshold 0.05, grace period 200,
// information gain, binary splits only.
type Config struct {
	// GracePeriod is the weight a leaf must accumulate between split
	// attempts (default 200).
	GracePeriod float64
	// Delta is the Hoeffding bound confidence (default 1e-7).
	Delta float64
	// Tau is the tie-break threshold (default 0.05).
	Tau float64
	// Criterion scores candidate splits (default split.InfoGain).
	Criterion split.Criterion
	// LeafMode selects the leaf predictor (default MajorityClass).
	LeafMode LeafMode
	// Bins is the number of candidate thresholds per numeric observer
	// (default 10).
	Bins int
	// MaxDepth bounds tree growth; 0 means unbounded.
	MaxDepth int
	// SubspaceSize, when positive, restricts each leaf to a random subset
	// of features of this size (the Adaptive Random Forest uses
	// round(sqrt(m))+1). Zero uses all features.
	SubspaceSize int
	// Seed drives the subspace sampling.
	Seed int64
}

// WithDefaults fills unset fields with the paper's defaults. Wrapping
// trees (HT-Ada, EFDT, the ensembles) must call it before sharing the
// config with NodeStats.
func (c Config) WithDefaults() Config {
	if c.GracePeriod <= 0 {
		c.GracePeriod = 200
	}
	if c.Delta <= 0 {
		c.Delta = 1e-7
	}
	if c.Tau <= 0 {
		c.Tau = 0.05
	}
	if c.Criterion == nil {
		c.Criterion = split.InfoGain{}
	}
	if c.Bins <= 0 {
		c.Bins = 10
	}
	return c
}

// NodeStats holds the sufficient statistics of one growing node: the class
// distribution, per-feature observers, the optional Naive Bayes leaf model
// and the adaptive-mode accuracy counters. It is reused by the HAT and
// EFDT trees, whose inner nodes also keep observing.
type NodeStats struct {
	cfg    *Config
	schema stream.Schema
	sc     *Scratch // per-tree shared workspace (never nil)
	counts []float64
	// observers[j] observes numeric feature j; cats[j] observes
	// categorical feature j. Exactly one of the two is non-nil per
	// feature, per the schema's kinds; cats is nil for the all-numeric
	// schemas that predate feature kinds.
	observers []*attrobs.Gaussian
	cats      []*attrobs.Categorical
	features  []int // observed feature subset; nil means all
	nb        *nbayes.Model
	mcOK      float64
	nbOK      float64
	seen      float64
	lastEval  float64
}

// NewNodeStats returns empty statistics for one node. rng is only used
// when cfg.SubspaceSize is positive. sc is the owning tree's shared
// workspace; nil allocates a private one (convenient for stand-alone
// nodes and tests, wasteful for whole trees).
func NewNodeStats(cfg *Config, schema stream.Schema, rng *rand.Rand, sc *Scratch) *NodeStats {
	if sc == nil {
		sc = NewScratch(schema)
	}
	s := &NodeStats{
		cfg:       cfg,
		schema:    schema,
		sc:        sc,
		counts:    make([]float64, schema.NumClasses),
		observers: make([]*attrobs.Gaussian, schema.NumFeatures),
	}
	if schema.HasCategorical() {
		s.cats = make([]*attrobs.Categorical, schema.NumFeatures)
	}
	for j := range s.observers {
		if s.cats != nil && schema.IsCategorical(j) {
			s.cats[j] = attrobs.NewCategorical(schema.NumClasses, schema.Cardinality(j))
			continue
		}
		s.observers[j] = attrobs.NewGaussian(schema.NumClasses, cfg.Bins)
	}
	if cfg.LeafMode != MajorityClass {
		s.nb = nbayes.New(schema.NumFeatures, schema.NumClasses)
	}
	if cfg.SubspaceSize > 0 && cfg.SubspaceSize < schema.NumFeatures && rng != nil {
		s.features = sc.sampleSubspace(rng, schema.NumFeatures, cfg.SubspaceSize)
	}
	return s
}

// ServingClone returns a read-only deep copy of the prediction-relevant
// state — class counts, the Naive Bayes leaf model and the adaptive-mode
// accuracy tallies — for serving snapshots. Observers, the feature
// subset and the shared scratch are learn/split-path state and are left
// nil: only Predict, Proba and MajorityClass may be called on the clone.
func (s *NodeStats) ServingClone() *NodeStats {
	c := &NodeStats{
		cfg:      s.cfg,
		schema:   s.schema,
		counts:   append([]float64(nil), s.counts...),
		mcOK:     s.mcOK,
		nbOK:     s.nbOK,
		seen:     s.seen,
		lastEval: s.lastEval,
	}
	if s.nb != nil {
		c.nb = s.nb.Clone()
	}
	return c
}

// featureSet returns the observed features (all when no subspace).
func (s *NodeStats) featureSet() []int {
	if s.features != nil {
		return s.features
	}
	return s.sc.all
}

// Observe updates the statistics with a labelled instance. For the
// adaptive mode it first scores both candidate predictors on the instance
// (test-then-update inside the leaf).
func (s *NodeStats) Observe(x []float64, y int, w float64) {
	if y < 0 || y >= len(s.counts) || w <= 0 {
		return
	}
	if s.cfg.LeafMode == NaiveBayesAdaptive && s.seen > 0 {
		if s.MajorityClass() == y {
			s.mcOK += w
		}
		// Score NB through the shared log-posterior buffer — this is the
		// single-writer learn path, so borrowing tree scratch is safe and
		// keeps Observe allocation-free.
		if linalg.ArgMax(s.nb.LogPosteriors(x, s.sc.logPost)) == y {
			s.nbOK += w
		}
	}
	s.counts[y] += w
	s.seen += w
	for _, j := range s.featureSet() {
		if s.cats != nil && s.cats[j] != nil {
			s.cats[j].Observe(x[j], y, w)
		} else {
			s.observers[j].Observe(x[j], y, w)
		}
	}
	if s.nb != nil {
		s.nb.Observe(x, y, w)
	}
}

// Weight returns the accumulated observation weight.
func (s *NodeStats) Weight() float64 { return s.seen }

// Counts returns the class-count vector (not a copy).
func (s *NodeStats) Counts() []float64 { return s.counts }

// MajorityClass returns the most frequent class (0 when empty).
func (s *NodeStats) MajorityClass() int {
	k := linalg.ArgMax(s.counts)
	if k < 0 {
		return 0
	}
	return k
}

// Pure reports whether at most one class has been observed.
func (s *NodeStats) Pure() bool {
	nonzero := 0
	for _, c := range s.counts {
		if c > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

// Predict returns the class predicted under the configured leaf mode.
func (s *NodeStats) Predict(x []float64) int {
	switch s.cfg.LeafMode {
	case NaiveBayes:
		if s.nb.Total() > 0 {
			return s.nb.Predict(x)
		}
	case NaiveBayesAdaptive:
		if s.nb.Total() > 0 && s.nbOK > s.mcOK {
			return s.nb.Predict(x)
		}
	}
	return s.MajorityClass()
}

// Proba writes class probabilities into out under the configured mode.
func (s *NodeStats) Proba(x []float64, out []float64) []float64 {
	c := s.schema.NumClasses
	if out == nil {
		out = make([]float64, c)
	}
	useNB := false
	switch s.cfg.LeafMode {
	case NaiveBayes:
		useNB = s.nb != nil && s.nb.Total() > 0
	case NaiveBayesAdaptive:
		useNB = s.nb != nil && s.nb.Total() > 0 && s.nbOK > s.mcOK
	}
	if useNB {
		return s.nb.Proba(x, out)
	}
	if s.seen == 0 {
		for k := range out {
			out[k] = 1 / float64(c)
		}
		return out
	}
	for k := range out {
		out[k] = s.counts[k] / s.seen
	}
	return out
}

// SeedChild pre-loads the class counts of a fresh child node with the
// estimated branch distribution of the split that created it, mirroring
// the MOA behaviour that keeps majority-class predictions sensible
// immediately after a split.
func (s *NodeStats) SeedChild(dist []float64) {
	for k, v := range dist {
		if k < len(s.counts) && v > 0 {
			s.counts[k] = v
			s.seen += v
		}
	}
}

// splitRef is a lightweight scored split reference — no branch
// distributions — used on the zero-alloc scan path.
type splitRef struct {
	feature   int
	threshold float64
	merit     float64
	kind      model.SplitKind
	mask      uint64
}

// bestSplits scans the observed features for the two highest-merit
// candidate splits through the shared scan buffers, allocating nothing.
// Numeric features propose threshold splits; categorical features
// propose native equality/subset splits from their exact level counts.
func (s *NodeStats) bestSplits() (best, second splitRef, ok bool) {
	best.merit, second.merit = math.Inf(-1), math.Inf(-1)
	for _, j := range s.featureSet() {
		var ref splitRef
		var found bool
		if s.cats != nil && s.cats[j] != nil {
			kind, thr, mask, m, f := s.cats[j].BestSplit(s.counts, s.cfg.Criterion, s.sc.scan)
			ref, found = splitRef{feature: j, threshold: thr, merit: m, kind: kind, mask: mask}, f
		} else {
			thr, m, f := s.observers[j].BestThreshold(s.counts, s.cfg.Criterion, s.sc.scan)
			ref, found = splitRef{feature: j, threshold: thr, merit: m}, f
		}
		if !found {
			continue
		}
		if ref.merit > best.merit {
			second = best
			best = ref
		} else if ref.merit > second.merit {
			second = ref
		}
		ok = true
	}
	return best, second, ok
}

// candOf converts a scan reference into a CandidateSplit (no Post).
func candOf(r splitRef) attrobs.CandidateSplit {
	return attrobs.CandidateSplit{Feature: r.feature, Threshold: r.threshold, Merit: r.merit, Kind: r.kind, Mask: r.mask}
}

// BestSplits returns the two highest-merit candidates across the observed
// features, ordered best first. ok is false when no feature has usable
// spread. The candidates carry no Post distributions — materialise them
// with DistributionsFor when a split is actually installed; the scan
// itself stays allocation-free.
func (s *NodeStats) BestSplits() (best, second attrobs.CandidateSplit, ok bool) {
	b, sec, ok := s.bestSplits()
	return candOf(b), candOf(sec), ok
}

// DistributionsAt estimates the branch class distributions of splitting
// this node on a numeric (feature, threshold) test, from the node's own
// observers.
func (s *NodeStats) DistributionsAt(feature int, threshold float64) (left, right []float64) {
	if feature < 0 || feature >= len(s.observers) || s.observers[feature] == nil {
		return nil, nil
	}
	return s.observers[feature].DistributionsAt(threshold)
}

// DistributionsFor returns the branch class distributions of a candidate
// split of any kind, from the node's own observers: Gaussian CDF
// estimates for threshold tests, exact level-count sums for categorical
// tests.
func (s *NodeStats) DistributionsFor(c attrobs.CandidateSplit) (left, right []float64) {
	if c.Feature < 0 || c.Feature >= s.schema.NumFeatures {
		return nil, nil
	}
	if s.cats != nil && s.cats[c.Feature] != nil {
		return s.cats[c.Feature].DistributionsFor(c.Kind, c.Threshold, c.Mask)
	}
	return s.DistributionsAt(c.Feature, c.Threshold)
}

// MeritAt re-scores a numeric (feature, threshold) split from the node's
// own observers without allocating.
func (s *NodeStats) MeritAt(feature int, threshold float64) float64 {
	if feature < 0 || feature >= len(s.observers) || s.observers[feature] == nil {
		return 0
	}
	return s.observers[feature].MeritAt(threshold, s.counts, s.cfg.Criterion, s.sc.scan)
}

// MeritFor re-scores a candidate split of any kind without allocating —
// EFDT's re-evaluation hot path.
func (s *NodeStats) MeritFor(c attrobs.CandidateSplit) float64 {
	if c.Feature < 0 || c.Feature >= s.schema.NumFeatures {
		return 0
	}
	if s.cats != nil && s.cats[c.Feature] != nil {
		return s.cats[c.Feature].MeritFor(c.Kind, c.Threshold, c.Mask, s.counts, s.cfg.Criterion, s.sc.scan)
	}
	return s.MeritAt(c.Feature, c.Threshold)
}

// ShouldAttempt reports whether enough weight accumulated since the last
// split attempt (the grace-period gate) and marks the attempt.
func (s *NodeStats) ShouldAttempt() bool {
	if s.seen-s.lastEval < s.cfg.GracePeriod {
		return false
	}
	s.lastEval = s.seen
	return true
}

// Bound returns the current Hoeffding bound for this node's weight.
func (s *NodeStats) Bound() float64 {
	return split.HoeffdingBound(s.cfg.Criterion.Range(s.schema.NumClasses), s.cfg.Delta, s.seen)
}

// DecideSplit applies the VFDT split rule: split on best when
// best-second > epsilon or epsilon < tau, requiring positive merit. The
// scan allocates nothing; the winning candidate's branch distributions
// are materialised only when the rule actually passes (a structural
// event).
func (s *NodeStats) DecideSplit() (attrobs.CandidateSplit, bool) {
	if s.Pure() {
		return attrobs.CandidateSplit{}, false
	}
	best, second, ok := s.bestSplits()
	if !ok || best.merit <= 0 {
		return attrobs.CandidateSplit{}, false
	}
	eps := s.Bound()
	secondMerit := 0.0
	if !math.IsInf(second.merit, -1) {
		secondMerit = second.merit
	}
	if best.merit-secondMerit > eps || eps < s.cfg.Tau {
		cand := candOf(best)
		left, right := s.DistributionsFor(cand)
		cand.Post = [][]float64{left, right}
		return cand, true
	}
	return attrobs.CandidateSplit{}, false
}
