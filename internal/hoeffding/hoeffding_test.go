package hoeffding

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/stream"
)

func binarySchema(m int) stream.Schema {
	return stream.Schema{NumFeatures: m, NumClasses: 2, Name: "test"}
}

// axisBatch labels y=1 iff x0 > 0.5 — a one-split concept.
func axisBatch(rng *rand.Rand, n int) stream.Batch {
	var b stream.Batch
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 0
		if x[0] > 0.5 {
			y = 1
		}
		b.X = append(b.X, x)
		b.Y = append(b.Y, y)
	}
	return b
}

func TestVFDTLearnsAxisConcept(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tree := New(Config{Seed: 1}, binarySchema(2))
	for i := 0; i < 50; i++ {
		tree.Learn(axisBatch(rng, 200))
	}
	comp := tree.Complexity()
	if comp.Inner < 1 {
		t.Fatal("tree never split on a trivially separable concept")
	}
	correct := 0
	test := axisBatch(rng, 1000)
	for i, x := range test.X {
		if tree.Predict(x) == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / 1000; acc < 0.9 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestVFDTGracePeriodGatesSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tree := New(Config{GracePeriod: 1e9, Seed: 2}, binarySchema(2))
	for i := 0; i < 20; i++ {
		tree.Learn(axisBatch(rng, 100))
	}
	if tree.Complexity().Inner != 0 {
		t.Fatal("split happened despite an enormous grace period")
	}
}

func TestVFDTPureLeafNeverSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tree := New(Config{Seed: 3}, binarySchema(2))
	var b stream.Batch
	for i := 0; i < 5000; i++ {
		b.X = append(b.X, []float64{rng.Float64(), rng.Float64()})
		b.Y = append(b.Y, 0) // single class
	}
	tree.Learn(b)
	if tree.Complexity().Inner != 0 {
		t.Fatal("pure stream must not split")
	}
}

func TestVFDTComplexityCounting(t *testing.T) {
	// MC leaves: splits = inner only; params = inner + leaves.
	tree := New(Config{Seed: 4}, binarySchema(2))
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		tree.Learn(axisBatch(rng, 200))
	}
	comp := tree.Complexity()
	if comp.Splits != float64(comp.Inner) {
		t.Fatalf("MC splits = %v, want inner count %d", comp.Splits, comp.Inner)
	}
	if comp.Params != float64(comp.Inner+comp.Leaves) {
		t.Fatalf("MC params = %v, want %d", comp.Params, comp.Inner+comp.Leaves)
	}
	if comp.Leaves != comp.Inner+1 {
		t.Fatalf("binary tree: leaves %d, inner %d", comp.Leaves, comp.Inner)
	}
}

func TestNBALeafTracksBothPredictors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := (&Config{LeafMode: NaiveBayesAdaptive}).withTestDefaults()
	s := NewNodeStats(cfg, binarySchema(2), nil, nil)
	// Gaussian-separable data: NB should win over majority class.
	for i := 0; i < 3000; i++ {
		y := rng.Intn(2)
		x := []float64{0.2 + 0.6*float64(y) + 0.05*rng.NormFloat64(), rng.Float64()}
		s.Observe(x, y, 1)
	}
	if s.nbOK <= s.mcOK {
		t.Fatalf("NB correct %v should beat MC correct %v on separable data", s.nbOK, s.mcOK)
	}
	// And the adaptive leaf must therefore use NB.
	x := []float64{0.82, 0.5}
	if s.Predict(x) != 1 {
		t.Fatal("NBA leaf failed to use the better NB model")
	}
}

// withTestDefaults mirrors the package defaulting for direct NodeStats
// construction in tests.
func (c *Config) withTestDefaults() *Config {
	cfg := c.WithDefaults()
	return &cfg
}

func TestNodeStatsProba(t *testing.T) {
	cfg := (&Config{}).withTestDefaults()
	s := NewNodeStats(cfg, binarySchema(2), nil, nil)
	p := s.Proba([]float64{0.5, 0.5}, nil)
	if p[0] != 0.5 || p[1] != 0.5 {
		t.Fatalf("empty leaf proba %v, want uniform", p)
	}
	s.Observe([]float64{0.1, 0.1}, 0, 3)
	s.Observe([]float64{0.9, 0.9}, 1, 1)
	p = s.Proba([]float64{0.5, 0.5}, nil)
	if p[0] != 0.75 || p[1] != 0.25 {
		t.Fatalf("count-based proba %v", p)
	}
}

func TestNodeStatsIgnoresBadObservations(t *testing.T) {
	cfg := (&Config{}).withTestDefaults()
	s := NewNodeStats(cfg, binarySchema(2), nil, nil)
	s.Observe([]float64{0.5, 0.5}, -1, 1)
	s.Observe([]float64{0.5, 0.5}, 9, 1)
	s.Observe([]float64{0.5, 0.5}, 0, 0)
	if s.Weight() != 0 {
		t.Fatal("bad observations recorded")
	}
}

func TestSubspaceRestriction(t *testing.T) {
	cfg := (&Config{SubspaceSize: 2}).withTestDefaults()
	rng := rand.New(rand.NewSource(7))
	s := NewNodeStats(cfg, stream.Schema{NumFeatures: 10, NumClasses: 2}, rng, nil)
	if len(s.featureSet()) != 2 {
		t.Fatalf("subspace size = %d, want 2", len(s.featureSet()))
	}
	// Features outside the subspace receive no observations.
	for i := 0; i < 100; i++ {
		x := make([]float64, 10)
		for j := range x {
			x[j] = rng.Float64()
		}
		s.Observe(x, rng.Intn(2), 1)
	}
	inSubspace := map[int]bool{}
	for _, j := range s.featureSet() {
		inSubspace[j] = true
	}
	for j := 0; j < 10; j++ {
		w := s.observers[j].ClassWeight(0) + s.observers[j].ClassWeight(1)
		if inSubspace[j] && w == 0 {
			t.Fatalf("subspace feature %d not observed", j)
		}
		if !inSubspace[j] && w != 0 {
			t.Fatalf("non-subspace feature %d observed", j)
		}
	}
}

func TestWeightedLearning(t *testing.T) {
	// Weight w must equal w repetitions for the class counts.
	cfg := (&Config{}).withTestDefaults()
	a := NewNodeStats(cfg, binarySchema(2), nil, nil)
	b := NewNodeStats(cfg, binarySchema(2), nil, nil)
	x := []float64{0.3, 0.7}
	a.Observe(x, 1, 3)
	for i := 0; i < 3; i++ {
		b.Observe(x, 1, 1)
	}
	if a.Weight() != b.Weight() || a.Counts()[1] != b.Counts()[1] {
		t.Fatal("weighted observation != repeated observations")
	}
}

func TestTreeName(t *testing.T) {
	if got := New(Config{}, binarySchema(2)).Name(); got != "VFDT (MC)" {
		t.Fatalf("Name = %q", got)
	}
	if got := New(Config{LeafMode: NaiveBayesAdaptive}, binarySchema(2)).Name(); got != "VFDT (NBA)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestMaxDepthBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tree := New(Config{MaxDepth: 1, Seed: 8}, binarySchema(2))
	for i := 0; i < 100; i++ {
		tree.Learn(axisBatch(rng, 200))
	}
	if d := tree.Complexity().Depth; d > 1 {
		t.Fatalf("depth %d exceeds MaxDepth 1", d)
	}
}

func TestSeedChildDistribution(t *testing.T) {
	cfg := (&Config{}).withTestDefaults()
	s := NewNodeStats(cfg, binarySchema(2), nil, nil)
	s.SeedChild([]float64{3, 7})
	if s.Weight() != 10 || s.MajorityClass() != 1 {
		t.Fatalf("seeded stats: weight %v, majority %d", s.Weight(), s.MajorityClass())
	}
}

func TestNaiveBayesLeafMode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tree := New(Config{LeafMode: NaiveBayes, Seed: 11}, binarySchema(2))
	// Gaussian-separable stream where NB shines before any split.
	var b stream.Batch
	for i := 0; i < 500; i++ {
		y := rng.Intn(2)
		b.X = append(b.X, []float64{0.2 + 0.6*float64(y) + 0.05*rng.NormFloat64(), rng.Float64()})
		b.Y = append(b.Y, y)
	}
	tree.Learn(b)
	if tree.Predict([]float64{0.85, 0.5}) != 1 || tree.Predict([]float64{0.15, 0.5}) != 0 {
		t.Fatal("NB leaf not discriminating before splits")
	}
	p := tree.Proba([]float64{0.85, 0.5}, nil)
	if p[1] < 0.8 {
		t.Fatalf("NB leaf proba %v", p)
	}
	if tree.Name() != "VFDT (NB)" {
		t.Fatalf("Name = %q", tree.Name())
	}
}

func TestNodeStatsBound(t *testing.T) {
	cfg := (&Config{}).withTestDefaults()
	s := NewNodeStats(cfg, binarySchema(2), nil, nil)
	s.Observe([]float64{0.1, 0.1}, 0, 100)
	b100 := s.Bound()
	s.Observe([]float64{0.9, 0.9}, 1, 300)
	if b400 := s.Bound(); b400 >= b100 {
		t.Fatalf("bound must shrink with weight: %v -> %v", b100, b400)
	}
}

// TestTreeSteadyStateZeroAllocs pins the per-instance hot path: once the
// tree has reached its depth bound, LearnOne, PredictLearnOne and
// Predict must not allocate — the per-tree Scratch absorbs all working
// memory (identity feature set, scan buffers).
func TestTreeSteadyStateZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tree := New(Config{MaxDepth: 1, Seed: 31}, binarySchema(2))
	for i := 0; i < 100; i++ {
		tree.Learn(axisBatch(rng, 200))
	}
	if tree.Complexity().Inner == 0 {
		t.Fatal("warm-up did not split the root; steady state not reached")
	}
	b := axisBatch(rng, 256)
	i := 0
	if avg := testing.AllocsPerRun(500, func() {
		r := i & 255
		tree.LearnOne(b.X[r], b.Y[r], 1)
		i++
	}); avg != 0 {
		t.Fatalf("steady-state LearnOne allocates %.2f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(500, func() {
		r := i & 255
		tree.PredictLearnOne(b.X[r], b.Y[r], 1)
		i++
	}); avg != 0 {
		t.Fatalf("steady-state PredictLearnOne allocates %.2f allocs/op, want 0", avg)
	}
	x := b.X[0]
	if avg := testing.AllocsPerRun(500, func() { tree.Predict(x) }); avg != 0 {
		t.Fatalf("Predict allocates %.2f allocs/op, want 0", avg)
	}
}

// TestDecideSplitScanZeroAllocs exercises the full candidate scan (every
// observed feature × every threshold, best/second tracking, the
// Hoeffding rule) on a node whose rule does not pass, which must not
// allocate — branch distributions are only materialised on an actual
// split.
func TestDecideSplitScanZeroAllocs(t *testing.T) {
	cfg := (&Config{}).withTestDefaults()
	s := NewNodeStats(cfg, binarySchema(2), nil, nil)
	rng := rand.New(rand.NewSource(41))
	// Uninformative features with mixed labels: merits hover near zero
	// while the bound stays above tau, so the rule never passes.
	for i := 0; i < 500; i++ {
		s.Observe([]float64{rng.Float64(), rng.Float64()}, i&1, 1)
	}
	if _, ok := s.DecideSplit(); ok {
		t.Fatal("noise node decided to split; scan test needs a no-split state")
	}
	if avg := testing.AllocsPerRun(200, func() { s.DecideSplit() }); avg != 0 {
		t.Fatalf("DecideSplit scan allocates %.2f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { s.MeritAt(0, 0.5) }); avg != 0 {
		t.Fatalf("MeritAt allocates %.2f allocs/op, want 0", avg)
	}
}

// TestPredictLearnOneMatchesSeparateCalls pins the fused traversal to
// test-then-train semantics: the returned prediction is the one made
// before the update, and the resulting tree state matches the separate
// Predict + LearnOne sequence exactly.
func TestPredictLearnOneMatchesSeparateCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	fused := New(Config{Seed: 9}, binarySchema(2))
	split := New(Config{Seed: 9}, binarySchema(2))
	for i := 0; i < 5000; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		y := 0
		if x[0] > 0.5 {
			y = 1
		}
		predSplit := split.Predict(x)
		split.LearnOne(x, y, 1)
		if pred := fused.PredictLearnOne(x, y, 1); pred != predSplit {
			t.Fatalf("instance %d: fused prediction %d, separate %d", i, pred, predSplit)
		}
	}
	if fused.String() != split.String() {
		t.Fatalf("trees diverge: %s vs %s", fused, split)
	}
}

var _ model.Classifier = (*Tree)(nil)
var _ model.ProbabilisticClassifier = (*Tree)(nil)
