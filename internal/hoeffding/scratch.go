package hoeffding

import (
	"math/rand"
	"sort"

	"repro/internal/attrobs"
	"repro/internal/stream"
)

// Scratch is the per-tree reusable workspace of the Hoeffding-family
// learn path, shared by every NodeStats of one tree (VFDT, HT-Ada main +
// alternates, EFDT). It supplies the identity feature set of nodes
// without a subspace, the subspace sampling pool, the threshold-scan
// branch buffers and the NBA observe-time Naive Bayes scoring buffer, so
// steady-state LearnOne runs at 0 allocs/op.
//
// Only the single-writer Learn path touches a Scratch — the read-side
// Predict/Proba paths never do — which keeps a Scorer's concurrent reads
// safe. Every tree (including every ensemble member) must own its own
// Scratch; sharing one across trees that learn in parallel is a data
// race.
type Scratch struct {
	all     []int // identity feature set [0..m)
	perm    []int // subspace sampling pool
	scan    *attrobs.ScanBuf
	logPost []float64 // NBA observe-time NB log-posteriors
}

// NewScratch returns a workspace for trees over the schema.
func NewScratch(schema stream.Schema) *Scratch {
	all := make([]int, schema.NumFeatures)
	for j := range all {
		all[j] = j
	}
	sc := &Scratch{
		all:     all,
		perm:    make([]int, schema.NumFeatures),
		scan:    attrobs.NewScanBuf(schema.NumClasses),
		logPost: make([]float64, schema.NumClasses),
	}
	for j := 0; j < schema.NumFeatures; j++ {
		if c := schema.Cardinality(j); c > 0 {
			sc.scan.ReserveLevels(c)
		}
	}
	return sc
}

// sampleSubspace draws a sorted random k-subset of the m features via a
// partial Fisher-Yates shuffle over the reusable pool. Only the returned
// per-node slice (which must persist for the node's lifetime) is
// allocated — node creation is a structural event, off the steady-state
// path.
func (sc *Scratch) sampleSubspace(rng *rand.Rand, m, k int) []int {
	copy(sc.perm, sc.all)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(m-i)
		sc.perm[i], sc.perm[j] = sc.perm[j], sc.perm[i]
		out[i] = sc.perm[i]
	}
	sort.Ints(out)
	return out
}
