package hoeffding

import (
	"io"

	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/stream"
)

// treeConfig maps the registry's flat parameter bag onto a Hoeffding
// config; the zero values defer to WithDefaults as usual.
func treeConfig(p registry.Params) Config {
	return Config{
		GracePeriod: p.GracePeriod,
		Delta:       p.Delta,
		Tau:         p.Tau,
		Bins:        p.Bins,
		MaxDepth:    p.MaxDepth,
		Seed:        p.Seed,
	}
}

// init registers the VFDT under its paper table names (fixed leaf modes)
// plus a generic "VFDT" that honours Params.LeafMode, and one shared
// checkpoint loader per concrete name (the payload's own config carries
// the leaf mode, so the three loaders restore identically). The generic
// "VFDT" alias gets no loader: envelopes record Tree.Name(), which is
// always leaf-mode-specific, so no checkpoint ever resolves "VFDT".
func init() {
	register := func(name string, mode LeafMode, useParamMode bool) {
		registry.Register(name, func(schema stream.Schema, p registry.Params) (model.Classifier, error) {
			cfg := treeConfig(p)
			cfg.LeafMode = mode
			if useParamMode {
				cfg.LeafMode = LeafMode(p.LeafMode)
			}
			return New(cfg, schema), nil
		})
		if !useParamMode {
			registry.RegisterLoader(name, func(schema stream.Schema, _ registry.Params, r io.Reader) (model.Classifier, error) {
				return loadTree(schema, r)
			})
		}
	}
	register("VFDT (MC)", MajorityClass, false)
	register("VFDT (NB)", NaiveBayes, false)
	register("VFDT (NBA)", NaiveBayesAdaptive, false)
	register("VFDT", MajorityClass, true)
}
