package hoeffding

import (
	"bytes"
	"testing"

	"repro/internal/model"
	"repro/internal/stream"
	"repro/internal/synth"
)

// On the planted categorical-concept stream the VFDT must install native
// categorical splits on the categorical feature — never a threshold on
// the raw level code, which cannot separate the alternating classes.
func TestVFDTPicksCategoricalSplit(t *testing.T) {
	gen := synth.NewCategoricalConcept(30_000, 8, 0.02, 31)
	tr := New(Config{Seed: 3}, gen.Schema())
	for {
		b, err := stream.NextBatch(gen, 256)
		if err != nil {
			break
		}
		tr.Learn(b)
	}
	if tr.root.isLeaf() {
		t.Fatal("VFDT never split on the planted categorical concept")
	}
	// The informative splits must be native categorical tests on feature
	// 2. (Deep, near-pure leaves may still split on noise features via
	// the tie-break — that is Hoeffding-tree behaviour, not a split-kind
	// defect — so the assertion is on the root and on the kind of every
	// feature-2 split.)
	if tr.root.feature != 2 {
		t.Fatalf("root split on feature %d, want the categorical feature 2", tr.root.feature)
	}
	seen := 0
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil || n.isLeaf() {
			return
		}
		if n.feature == 2 {
			if n.kind != model.SplitEquality && n.kind != model.SplitSubset {
				t.Fatalf("split kind %v on the categorical feature, want a native categorical kind", n.kind)
			}
			seen++
		}
		walk(n.left)
		walk(n.right)
	}
	walk(tr.root)
	if seen == 0 {
		t.Fatal("no categorical split installed")
	}
	// And the concept is actually recovered: clean-label accuracy on a
	// fresh sample from the same concept.
	probe := synth.NewCategoricalConcept(2_000, 8, 0, 99)
	good, total := 0, 0
	for {
		inst, err := probe.Next()
		if err != nil {
			break
		}
		if tr.Predict(inst.X) == inst.Y {
			good++
		}
		total++
	}
	if acc := float64(good) / float64(total); acc < 0.9 {
		t.Fatalf("accuracy %.3f on the planted concept, want >= 0.9", acc)
	}
}

// Save → load → continue with a categorical schema stays byte-identical
// for the VFDT.
func TestVFDTCategoricalCheckpointContinue(t *testing.T) {
	gen := synth.NewCategoricalConcept(20_000, 8, 0.02, 33)
	schema := gen.Schema()
	var batches []stream.Batch
	for i := 0; i < 40; i++ {
		b, err := stream.NextBatch(gen, 128)
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, b)
	}
	control := New(Config{Seed: 5}, schema)
	subject := New(Config{Seed: 5}, schema)
	half := len(batches) / 2
	for i := 0; i < half; i++ {
		control.Learn(batches[i])
		subject.Learn(batches[i])
	}
	var buf bytes.Buffer
	if err := subject.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := loadTree(schema, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := half; i < len(batches); i++ {
		control.Learn(batches[i])
		restored.Learn(batches[i])
	}
	for _, b := range batches {
		for _, x := range b.X {
			if control.Predict(x) != restored.Predict(x) {
				t.Fatal("VFDT prediction diverged after categorical checkpoint resume")
			}
		}
	}
}
