package hoeffding

import (
	"testing"

	"repro/internal/registry"
)

// registry.LeafMode mirrors hoeffding.LeafMode without an import (the
// registry must not depend on learner packages). Pin the value mapping
// so a reordered or inserted constant on either side fails loudly
// instead of silently building the wrong leaf predictor.
func TestRegistryLeafModeValuesMatch(t *testing.T) {
	pairs := []struct {
		reg  registry.LeafMode
		tree LeafMode
	}{
		{registry.LeafMajorityClass, MajorityClass},
		{registry.LeafNaiveBayes, NaiveBayes},
		{registry.LeafNaiveBayesAdaptive, NaiveBayesAdaptive},
	}
	for _, p := range pairs {
		if int(p.reg) != int(p.tree) {
			t.Fatalf("registry.LeafMode %d != hoeffding.LeafMode %d (%s)", p.reg, p.tree, p.tree)
		}
	}
}
