package hoeffding

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/stream"
)

// twoLeafTree builds a hand-assembled split at x0 <= 0.5 whose left
// leaf predicts class 0 and right leaf predicts class 1.
func twoLeafTree(t *testing.T) *Tree {
	t.Helper()
	schema := stream.Schema{NumFeatures: 2, NumClasses: 2, Name: "nonfinite"}
	tr := New(Config{}, schema)
	left := &node{stats: NewNodeStats(&tr.cfg, schema, tr.rng, tr.sc), depth: 1}
	right := &node{stats: NewNodeStats(&tr.cfg, schema, tr.rng, tr.sc), depth: 1}
	left.stats.Observe([]float64{0.2, 0.2}, 0, 5)
	right.stats.Observe([]float64{0.8, 0.8}, 1, 5)
	tr.root.stats = nil
	tr.root.feature, tr.root.threshold = 0, 0.5
	tr.root.left, tr.root.right = left, right
	return tr
}

// TestNonFiniteRoutesLeft pins the deterministic routing rule the
// family shares with FIMT-DD and the DMT: NaN and ±Inf feature values
// go left on every path — live predict, learn and the serving snapshot.
// (Previously NaN and +Inf compared false against the threshold and
// silently drifted right, diverging from the observers, which skip
// non-finite values entirely.)
func TestNonFiniteRoutesLeft(t *testing.T) {
	tr := twoLeafTree(t)
	snap := tr.Snapshot()
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		x := []float64{v, 0.9}
		if got := tr.Predict(x); got != 0 {
			t.Fatalf("live Predict(%v) = %d, want left leaf class 0", v, got)
		}
		if got := snap.Predict(x); got != 0 {
			t.Fatalf("snapshot Predict(%v) = %d, want left leaf class 0", v, got)
		}
		// The learn path must observe at the same leaf it predicts from.
		before := tr.root.left.stats.Weight()
		tr.LearnOne(x, 0, 1)
		if tr.root.left.stats.Weight() != before+1 {
			t.Fatalf("LearnOne(%v) did not train the left leaf", v)
		}
	}
	// Finite values still split at the threshold.
	if tr.Predict([]float64{0.4, 0}) != 0 || tr.Predict([]float64{0.6, 0}) != 1 {
		t.Fatal("finite routing broken")
	}
	_ = model.RouteLeft // the predicate under test is the shared one
}
