package hoeffding

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/attrobs"
	"repro/internal/model"
	"repro/internal/nbayes"
	"repro/internal/registry"
	"repro/internal/rng"
	"repro/internal/split"
	"repro/internal/stream"
)

// Checkpoint documents of the Hoeffding-tree family. The NodeStats and
// Config codecs are shared: the adaptive tree (internal/hatada), EFDT
// (internal/efdt) and both ensembles (internal/ensemble) embed these
// documents inside their own checkpoint payloads, so all five tree
// learners persist their sufficient statistics through one code path.

// TreeDocVersion versions the VFDT payload inside the persist envelope.
const TreeDocVersion = 1

// ConfigDoc is the serialisable form of Config: the Criterion interface
// is stored by name and mapped back on restore.
type ConfigDoc struct {
	GracePeriod  float64
	Delta        float64
	Tau          float64
	Criterion    string
	LeafMode     int
	Bins         int
	MaxDepth     int
	SubspaceSize int
	Seed         int64
}

// Doc exports a defaulted config for checkpointing.
func (c Config) Doc() ConfigDoc {
	return ConfigDoc{
		GracePeriod: c.GracePeriod, Delta: c.Delta, Tau: c.Tau,
		Criterion: c.Criterion.Name(), LeafMode: int(c.LeafMode),
		Bins: c.Bins, MaxDepth: c.MaxDepth, SubspaceSize: c.SubspaceSize,
		Seed: c.Seed,
	}
}

// ConfigFromDoc reconstructs a config, resolving the criterion by name.
func ConfigFromDoc(d ConfigDoc) (Config, error) {
	c := Config{
		GracePeriod: d.GracePeriod, Delta: d.Delta, Tau: d.Tau,
		LeafMode: LeafMode(d.LeafMode), Bins: d.Bins, MaxDepth: d.MaxDepth,
		SubspaceSize: d.SubspaceSize, Seed: d.Seed,
	}
	switch d.Criterion {
	case split.InfoGain{}.Name(), "":
		c.Criterion = split.InfoGain{}
	case split.GiniGain{}.Name():
		c.Criterion = split.GiniGain{}
	default:
		return Config{}, fmt.Errorf("hoeffding: unknown split criterion %q in checkpoint", d.Criterion)
	}
	if c.LeafMode < MajorityClass || c.LeafMode > NaiveBayesAdaptive {
		return Config{}, fmt.Errorf("hoeffding: unknown leaf mode %d in checkpoint", d.LeafMode)
	}
	return c.WithDefaults(), nil
}

// NodeStatsDoc is the serialisable state of one node's sufficient
// statistics. CatObservers is parallel to Observers: for a categorical
// feature the Gaussian entry is zero-valued and the categorical one
// holds the state, and vice versa. Documents written before categorical
// kinds existed decode with CatObservers nil, which is exactly the
// all-numeric case.
type NodeStatsDoc struct {
	Counts       []float64
	Observers    []attrobs.GaussianState
	CatObservers []attrobs.CategoricalState
	Features     []int // observed feature subset; nil means all
	NB           *nbayes.ModelState
	McOK         float64
	NbOK         float64
	Seen         float64
	LastEval     float64
}

// Doc exports the statistics for checkpointing.
func (s *NodeStats) Doc() *NodeStatsDoc {
	d := &NodeStatsDoc{
		Counts:    append([]float64(nil), s.counts...),
		Observers: make([]attrobs.GaussianState, len(s.observers)),
		Features:  append([]int(nil), s.features...),
		McOK:      s.mcOK, NbOK: s.nbOK, Seen: s.seen, LastEval: s.lastEval,
	}
	if s.cats != nil {
		d.CatObservers = make([]attrobs.CategoricalState, len(s.cats))
	}
	for j, o := range s.observers {
		if o != nil {
			d.Observers[j] = o.State()
		}
	}
	for j, c := range s.cats {
		if c != nil {
			d.CatObservers[j] = c.State()
		}
	}
	if s.nb != nil {
		st := s.nb.State()
		d.NB = &st
	}
	return d
}

// NodeStatsFromDoc reconstructs node statistics against the owning
// tree's shared config, schema and scratch. It consumes no randomness —
// the feature subset is restored verbatim, never re-sampled.
func NodeStatsFromDoc(cfg *Config, schema stream.Schema, sc *Scratch, d *NodeStatsDoc) (*NodeStats, error) {
	if len(d.Counts) != schema.NumClasses {
		return nil, fmt.Errorf("hoeffding: checkpoint node has %d class counts, schema wants %d", len(d.Counts), schema.NumClasses)
	}
	if len(d.Observers) != schema.NumFeatures {
		return nil, fmt.Errorf("hoeffding: checkpoint node has %d observers, schema wants %d", len(d.Observers), schema.NumFeatures)
	}
	if schema.HasCategorical() && len(d.CatObservers) != schema.NumFeatures {
		return nil, fmt.Errorf("hoeffding: checkpoint node has %d categorical observers, schema wants %d", len(d.CatObservers), schema.NumFeatures)
	}
	s := &NodeStats{
		cfg: cfg, schema: schema, sc: sc,
		counts:    append([]float64(nil), d.Counts...),
		observers: make([]*attrobs.Gaussian, len(d.Observers)),
		mcOK:      d.McOK, nbOK: d.NbOK, seen: d.Seen, lastEval: d.LastEval,
	}
	if schema.HasCategorical() {
		s.cats = make([]*attrobs.Categorical, schema.NumFeatures)
	}
	for j := range d.Observers {
		if schema.IsCategorical(j) {
			c, err := attrobs.CategoricalFromState(d.CatObservers[j])
			if err != nil {
				return nil, fmt.Errorf("hoeffding: checkpoint categorical observer %d: %w", j, err)
			}
			if c.Cardinality() != schema.Cardinality(j) {
				return nil, fmt.Errorf("hoeffding: checkpoint categorical observer %d has cardinality %d, schema wants %d", j, c.Cardinality(), schema.Cardinality(j))
			}
			s.cats[j] = c
			continue
		}
		o, err := attrobs.GaussianFromState(d.Observers[j])
		if err != nil {
			return nil, fmt.Errorf("hoeffding: checkpoint observer %d: %w", j, err)
		}
		s.observers[j] = o
	}
	if len(d.Features) > 0 {
		for _, j := range d.Features {
			if j < 0 || j >= schema.NumFeatures {
				return nil, fmt.Errorf("hoeffding: checkpoint feature subset entry %d out of range [0,%d)", j, schema.NumFeatures)
			}
		}
		s.features = append([]int(nil), d.Features...)
	}
	if cfg.LeafMode != MajorityClass {
		if d.NB == nil {
			return nil, fmt.Errorf("hoeffding: checkpoint node is missing its Naive Bayes leaf model (leaf mode %s)", cfg.LeafMode)
		}
		nb, err := nbayes.FromState(*d.NB)
		if err != nil {
			return nil, fmt.Errorf("hoeffding: checkpoint leaf model: %w", err)
		}
		s.nb = nb
	}
	return s, nil
}

// TreeNodeDoc is one serialised VFDT node. Stats is nil at inner nodes
// (a plain VFDT stops observing after a split). Kind and Mask carry the
// categorical split tests; documents written before categorical kinds
// existed decode with the zero Kind, the numeric threshold test.
type TreeNodeDoc struct {
	Stats       *NodeStatsDoc
	Feature     int
	Threshold   float64
	Kind        uint8
	Mask        uint64
	Depth       int
	Left, Right *TreeNodeDoc
}

// TreeDoc is the serialisable state of a whole Hoeffding tree, embedded
// verbatim in the ensemble member documents.
type TreeDoc struct {
	Version int
	Config  ConfigDoc
	Schema  stream.Schema
	Splits  int
	RNG     rng.State
	Root    *TreeNodeDoc
}

// Doc exports the tree for checkpointing.
func (t *Tree) Doc() *TreeDoc {
	var export func(n *node) *TreeNodeDoc
	export = func(n *node) *TreeNodeDoc {
		if n == nil {
			return nil
		}
		d := &TreeNodeDoc{
			Feature: n.feature, Threshold: n.threshold, Depth: n.depth,
			Kind: uint8(n.kind), Mask: n.mask,
			Left: export(n.left), Right: export(n.right),
		}
		if n.stats != nil {
			d.Stats = n.stats.Doc()
		}
		return d
	}
	return &TreeDoc{
		Version: TreeDocVersion,
		Config:  t.cfg.Doc(),
		Schema:  t.schema,
		Splits:  t.splits,
		RNG:     t.src.State(),
		Root:    export(t.root),
	}
}

// TreeFromDoc reconstructs a tree from its exported document.
func TreeFromDoc(doc *TreeDoc) (*Tree, error) {
	if doc.Version != TreeDocVersion {
		return nil, fmt.Errorf("hoeffding: unsupported tree document version %d (this build reads %d)", doc.Version, TreeDocVersion)
	}
	if err := doc.Schema.Validate(); err != nil {
		return nil, fmt.Errorf("hoeffding: checkpoint schema: %w", err)
	}
	if doc.Root == nil {
		return nil, fmt.Errorf("hoeffding: checkpoint has no root")
	}
	cfg, err := ConfigFromDoc(doc.Config)
	if err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg, schema: doc.Schema, splits: doc.Splits, sc: NewScratch(doc.Schema)}
	t.rng, t.src = rng.Restore(doc.RNG)
	var build func(d *TreeNodeDoc) (*node, error)
	build = func(d *TreeNodeDoc) (*node, error) {
		if !model.SplitKind(d.Kind).Valid() {
			return nil, fmt.Errorf("hoeffding: checkpoint node has unknown split kind %d", d.Kind)
		}
		n := &node{feature: d.Feature, threshold: d.Threshold, kind: model.SplitKind(d.Kind), mask: d.Mask, depth: d.Depth}
		if d.Stats != nil {
			stats, err := NodeStatsFromDoc(&t.cfg, t.schema, t.sc, d.Stats)
			if err != nil {
				return nil, err
			}
			n.stats = stats
		}
		if (d.Left == nil) != (d.Right == nil) {
			return nil, fmt.Errorf("hoeffding: non-binary node in checkpoint")
		}
		if d.Left != nil {
			left, err := build(d.Left)
			if err != nil {
				return nil, err
			}
			right, err := build(d.Right)
			if err != nil {
				return nil, err
			}
			n.left, n.right = left, right
		} else if d.Stats == nil {
			return nil, fmt.Errorf("hoeffding: checkpoint leaf has no statistics")
		}
		return n, nil
	}
	root, err := build(doc.Root)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// SaveState implements model.Checkpointer.
func (t *Tree) SaveState(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(t.Doc()); err != nil {
		return fmt.Errorf("hoeffding: save %s: %w", t.Name(), err)
	}
	return nil
}

// CheckpointParams implements registry.ParamsReporter.
func (t *Tree) CheckpointParams() registry.Params {
	return registry.Params{
		Seed: t.cfg.Seed, GracePeriod: t.cfg.GracePeriod, Delta: t.cfg.Delta,
		Tau: t.cfg.Tau, Bins: t.cfg.Bins, MaxDepth: t.cfg.MaxDepth,
		LeafMode: registry.LeafMode(t.cfg.LeafMode),
	}
}

// loadTree decodes a VFDT payload, validating it against the envelope
// schema.
func loadTree(schema stream.Schema, r io.Reader) (*Tree, error) {
	var doc TreeDoc
	if err := gob.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("hoeffding: decode checkpoint: %w", err)
	}
	if doc.Schema.NumFeatures != schema.NumFeatures || doc.Schema.NumClasses != schema.NumClasses {
		return nil, fmt.Errorf("hoeffding: payload schema (%d features, %d classes) does not match envelope (%d features, %d classes)",
			doc.Schema.NumFeatures, doc.Schema.NumClasses, schema.NumFeatures, schema.NumClasses)
	}
	if !doc.Schema.SameKinds(schema) {
		return nil, fmt.Errorf("hoeffding: payload schema feature kinds do not match envelope")
	}
	return TreeFromDoc(&doc)
}
