package hoeffding

import (
	"fmt"
	"math/rand"

	"repro/internal/attrobs"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/stream"
)

// node is one tree node: a leaf carries statistics, an inner node a
// binary split — the numeric threshold test (x[feature] <= threshold
// goes left) or a categorical equality/subset test, discriminated by
// kind and routed through the shared model.RouteSplit predicate.
// Non-finite values route left for every kind — the observers skip
// them, so no test ever separates them, and deterministic routing keeps
// learn, predict and snapshot paths consistent. Unseen categorical
// levels route right, equally deterministically.
type node struct {
	stats       *NodeStats
	feature     int
	threshold   float64
	kind        model.SplitKind
	mask        uint64
	left, right *node
	depth       int

	// snap caches the immutable SnapNode that froze this subtree at the
	// last publish; learn traversals clear it along their path so
	// Snapshot() re-freezes only what changed (copy-on-write).
	snap *model.SnapNode
}

func (n *node) isLeaf() bool { return n.left == nil }

// sortTo routes x to its leaf.
func (n *node) sortTo(x []float64) *node {
	cur := n
	for !cur.isLeaf() {
		if model.RouteSplit(x[cur.feature], cur.kind, cur.threshold, cur.mask, true) {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	return cur
}

// sortLearn is sortTo for learn traversals: it additionally clears the
// frozen-subtree cache of every node on the path, since the leaf's
// statistics will change and the leaf may split under it.
func (n *node) sortLearn(x []float64) *node {
	cur := n
	for {
		cur.snap = nil
		if cur.isLeaf() {
			return cur
		}
		if model.RouteSplit(x[cur.feature], cur.kind, cur.threshold, cur.mask, true) {
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
}

// freeze returns the immutable SnapNode of n's subtree, reusing the one
// cached at the last publish when no learn path has visited n since.
func freeze(n *node) *model.SnapNode {
	if n.snap != nil {
		return n.snap
	}
	if n.isLeaf() {
		n.snap = model.FreezeLeaf(n.stats.ServingClone())
	} else {
		n.snap = model.FreezeInnerSplit(n.feature, n.kind, n.threshold, n.mask, freeze(n.left), freeze(n.right))
	}
	return n.snap
}

// Tree is a Hoeffding tree (VFDT). The zero value is not usable; construct
// with New.
type Tree struct {
	cfg    Config
	schema stream.Schema
	root   *node
	rng    *rand.Rand
	src    *rng.Source // counted source behind rng, for checkpointing
	sc     *Scratch    // learn-path workspace shared by all nodes
	splits int         // lifetime split count, for diagnostics
}

// New returns an empty Hoeffding tree for the schema.
func New(cfg Config, schema stream.Schema) *Tree {
	cfg = cfg.WithDefaults()
	t := &Tree{cfg: cfg, schema: schema, sc: NewScratch(schema)}
	t.rng, t.src = rng.New(cfg.Seed + 1)
	t.root = &node{stats: NewNodeStats(&t.cfg, schema, t.rng, t.sc)}
	return t
}

// Name implements model.Classifier.
func (t *Tree) Name() string {
	if t.cfg.LeafMode == MajorityClass {
		return "VFDT (MC)"
	}
	return "VFDT (" + t.cfg.LeafMode.String() + ")"
}

// Schema returns the stream schema the tree was built for.
func (t *Tree) Schema() stream.Schema { return t.schema }

// Learn implements model.Classifier with unit instance weights.
func (t *Tree) Learn(b stream.Batch) {
	for i, x := range b.X {
		t.LearnOne(x, b.Y[i], 1)
	}
}

// LearnOne updates the tree with one weighted instance (the ensembles use
// Poisson weights).
func (t *Tree) LearnOne(x []float64, y int, w float64) {
	t.learnAt(t.root.sortLearn(x), x, y, w)
}

// PredictLearnOne routes x to its leaf once, returns the prediction made
// before learning, then applies the weighted update — the test-then-train
// step of the ensembles in a single traversal.
func (t *Tree) PredictLearnOne(x []float64, y int, w float64) int {
	leaf := t.root.sortLearn(x)
	pred := leaf.stats.Predict(x)
	t.learnAt(leaf, x, y, w)
	return pred
}

// learnAt observes the instance at its leaf and applies the VFDT split
// rule.
func (t *Tree) learnAt(leaf *node, x []float64, y int, w float64) {
	leaf.stats.Observe(x, y, w)
	if !leaf.stats.ShouldAttempt() {
		return
	}
	if t.cfg.MaxDepth > 0 && leaf.depth >= t.cfg.MaxDepth {
		return
	}
	cand, ok := leaf.stats.DecideSplit()
	if !ok {
		return
	}
	t.splitLeaf(leaf, cand)
}

// splitLeaf converts a leaf into an inner node with two fresh children.
func (t *Tree) splitLeaf(leaf *node, cand attrobs.CandidateSplit) {
	post := cand.Post
	leaf.feature = cand.Feature
	leaf.threshold = cand.Threshold
	leaf.kind = cand.Kind
	leaf.mask = cand.Mask
	leaf.left = &node{stats: NewNodeStats(&t.cfg, t.schema, t.rng, t.sc), depth: leaf.depth + 1}
	leaf.right = &node{stats: NewNodeStats(&t.cfg, t.schema, t.rng, t.sc), depth: leaf.depth + 1}
	if len(post) == 2 {
		leaf.left.stats.SeedChild(post[0])
		leaf.right.stats.SeedChild(post[1])
	}
	leaf.stats = nil // inner nodes of a plain VFDT stop observing
	t.splits++
}

// Predict implements model.Classifier.
func (t *Tree) Predict(x []float64) int {
	return t.root.sortTo(x).stats.Predict(x)
}

// Proba implements model.ProbabilisticClassifier.
func (t *Tree) Proba(x []float64, out []float64) []float64 {
	return t.root.sortTo(x).stats.Proba(x, out)
}

// countNodes returns (inner, leaves, depth).
func countNodes(n *node) (inner, leaves, depth int) {
	if n == nil {
		return 0, 0, 0
	}
	if n.isLeaf() {
		return 0, 1, 0
	}
	li, ll, ld := countNodes(n.left)
	ri, rl, rd := countNodes(n.right)
	d := ld
	if rd > d {
		d = rd
	}
	return li + ri + 1, ll + rl, d + 1
}

// Complexity implements model.Classifier with the paper's counting:
// majority leaves contribute no splits; NB/NBA leaves count as model
// leaves.
func (t *Tree) Complexity() model.Complexity {
	inner, leaves, depth := countNodes(t.root)
	kind := model.LeafMajority
	if t.cfg.LeafMode != MajorityClass {
		kind = model.LeafModel
	}
	return model.TreeComplexity(inner, leaves, depth, kind, t.schema.NumFeatures, t.schema.NumClasses)
}

// Snapshot implements model.Snapshotter: an immutable serving copy of
// the tree structure with serving clones of the leaf statistics.
// Publishing is copy-on-write: subtrees no learn path has visited since
// the previous Snapshot are shared with it via the per-node freeze
// cache.
func (t *Tree) Snapshot() model.Snapshot {
	root := freeze(t.root)
	kind := model.LeafMajority
	if t.cfg.LeafMode != MajorityClass {
		kind = model.LeafModel
	}
	return &model.CowTree{
		ModelName:     t.Name(),
		Comp:          model.TreeComplexity(root.Inner, root.Leaves, root.Depth, kind, t.schema.NumFeatures, t.schema.NumClasses),
		Root:          root,
		NonFiniteLeft: true,
	}
}

// LifetimeSplits returns the number of split events since construction.
func (t *Tree) LifetimeSplits() int { return t.splits }

// StructureVersion implements model.StructureVersioner with the lifetime
// split count — a VFDT only ever grows, so splits capture every
// structural change.
func (t *Tree) StructureVersion() uint64 { return uint64(t.splits) }

// String renders a compact description of the tree shape.
func (t *Tree) String() string {
	inner, leaves, depth := countNodes(t.root)
	return fmt.Sprintf("%s{inner: %d, leaves: %d, depth: %d}", t.Name(), inner, leaves, depth)
}
