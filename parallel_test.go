package repro

import (
	"math/rand"
	"sync"
	"testing"
)

// TestScorerServesDuringParallelEnsembleLearn hammers the serving
// pattern: a Scorer-wrapped ARF whose Learn fans members across a worker
// pool, with reader goroutines predicting concurrently. Run under
// `make race` it proves the member fan-out keeps all mutation behind the
// Scorer's write lock.
func TestScorerServesDuringParallelEnsembleLearn(t *testing.T) {
	batches := linearBenchBatches(8, 32, 64, 17)
	clf := MustNew("Forest Ens.", Schema{NumFeatures: 8, NumClasses: 2, Name: "race"},
		WithSeed(3), WithEnsembleWorkers(4))
	s := NewScorer(clf)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			out := make([]float64, 2)
			for {
				select {
				case <-done:
					return
				default:
				}
				x := batches[rng.Intn(len(batches))].X[rng.Intn(64)]
				s.Predict(x)
				s.Proba(x, out)
			}
		}(int64(r))
	}
	for i := 0; i < 64; i++ {
		s.Learn(batches[i&31])
	}
	close(done)
	wg.Wait()
}

// TestEnsembleWorkersOptionIsResultInvariant checks the public-API
// guarantee that WithEnsembleWorkers only changes the schedule, never
// the model: sequential and parallel ensembles built through the facade
// agree on every prediction after identical training.
func TestEnsembleWorkersOptionIsResultInvariant(t *testing.T) {
	batches := linearBenchBatches(6, 24, 80, 23)
	schema := Schema{NumFeatures: 6, NumClasses: 2, Name: "det"}
	for _, name := range []string{"Forest Ens.", "Bagging Ens."} {
		seq := MustNew(name, schema, WithSeed(7), WithEnsembleWorkers(1))
		par := MustNew(name, schema, WithSeed(7), WithEnsembleWorkers(4))
		for _, b := range batches {
			seq.Learn(b)
			par.Learn(b)
		}
		for i, b := range batches {
			for r, x := range b.X {
				if seq.Predict(x) != par.Predict(x) {
					t.Fatalf("%s: batch %d row %d: parallel prediction diverges", name, i, r)
				}
			}
		}
	}
}
