// Command dmtrun evaluates one model on one stream prequentially and
// prints the aggregate measures, a sliding-window F1 trace, and — for the
// Dynamic Model Tree — the interpretable change log and final structure.
// The run is cancellable: Ctrl-C stops at the next iteration and the
// measures collected so far are still reported.
//
// Usage:
//
//	dmtrun -model DMT -dataset SEA -scale 0.05 [-seed 42] [-trace]
//	dmtrun -model "VFDT (NBA)" -csv stream.csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"repro"
)

func main() {
	var (
		modelName = flag.String("model", "DMT", "registered model name (see -list)")
		dsName    = flag.String("dataset", "SEA", "Table I data set name")
		csvPath   = flag.String("csv", "", "evaluate on a CSV stream instead of a Table I data set")
		classes   = flag.Int("classes", 0, "class count of the -csv stream; > 0 reads the file lazily row by row (large files), 0 loads it into memory and infers the count from the labels")
		scale     = flag.Float64("scale", 0.05, "fraction of the Table I stream length")
		seed      = flag.Int64("seed", 42, "random seed")
		batch     = flag.Float64("batch", 0.001, "prequential batch fraction")
		trace     = flag.Bool("trace", false, "print the sliding-window F1 series")
		ckptPath  = flag.String("checkpoint", "", "save the trained model to this file when the run finishes (or is interrupted); any registered model, self-describing envelope")
		resume    = flag.Bool("resume", false, "restore the model from the -checkpoint file before evaluating instead of starting fresh (-model must match the checkpoint)")
		list      = flag.Bool("list", false, "list registered models and exit")
	)
	flag.Parse()

	if *resume && *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "dmtrun: -resume requires -checkpoint FILE")
		os.Exit(2)
	}

	if *list {
		fmt.Println(strings.Join(repro.Models(), "\n"))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var strm repro.Stream
	switch {
	case *csvPath != "" && *classes > 0:
		// Streaming mode: the file is read lazily, one row per step.
		fs, err := repro.OpenCSVStream(*csvPath, *classes)
		if err != nil {
			fail(err)
		}
		defer fs.Close()
		strm = fs
	case *csvPath != "":
		f, err := os.Open(*csvPath)
		if err != nil {
			fail(err)
		}
		mem, err := repro.ReadCSVStream(f, *csvPath, 0)
		f.Close()
		if err != nil {
			fail(err)
		}
		strm = mem
	default:
		entry, err := repro.DatasetByName(*dsName)
		if err != nil {
			fail(err)
		}
		strm = entry.New(*scale, *seed)
	}

	var clf repro.Classifier
	var err error
	if *resume {
		f, ferr := os.Open(*ckptPath)
		if ferr != nil {
			fail(ferr)
		}
		clf, err = repro.Load(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		if clf.Name() != *modelName {
			fail(fmt.Errorf("checkpoint holds %q but -model is %q", clf.Name(), *modelName))
		}
		// The checkpointed model must fit the selected stream: resuming
		// onto a different shape would index out of range mid-run.
		if sp, ok := clf.(interface{ Schema() repro.Schema }); ok {
			ck, want := sp.Schema(), strm.Schema()
			if ck.NumFeatures != want.NumFeatures || ck.NumClasses != want.NumClasses {
				fail(fmt.Errorf("checkpoint was trained on %d features / %d classes, but the selected stream has %d / %d",
					ck.NumFeatures, ck.NumClasses, want.NumFeatures, want.NumClasses))
			}
		}
		fmt.Fprintf(os.Stderr, "dmtrun: resumed %s from %s\n", clf.Name(), *ckptPath)
	} else {
		clf, err = repro.New(*modelName, strm.Schema(), repro.WithSeed(*seed))
		if err != nil {
			fail(err)
		}
	}
	res, err := repro.PrequentialContext(ctx, clf, strm, repro.EvalOptions{BatchFraction: *batch})
	switch {
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "dmtrun: interrupted — reporting partial results")
	case err != nil:
		fail(err)
	}

	if *ckptPath != "" {
		// Write-then-rename so a failed or interrupted save never
		// clobbers the previous (possibly only) good checkpoint.
		tmp, ferr := os.CreateTemp(filepath.Dir(*ckptPath), ".ckpt-*")
		if ferr != nil {
			fail(ferr)
		}
		if err := repro.Save(tmp, clf); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			fail(err)
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			fail(err)
		}
		if err := os.Rename(tmp.Name(), *ckptPath); err != nil {
			os.Remove(tmp.Name())
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "dmtrun: checkpointed %s to %s\n", clf.Name(), *ckptPath)
	}

	f1m, f1s := res.F1()
	spm, sps := res.Splits()
	pm, ps := res.Params()
	tm, ts := res.Seconds()
	fmt.Printf("%s on %s (%d iterations)\n", *modelName, strm.Schema().Name, len(res.Iters))
	fmt.Printf("  F1:       %.3f ± %.3f\n", f1m, f1s)
	fmt.Printf("  Splits:   %.1f ± %.1f\n", spm, sps)
	fmt.Printf("  Params:   %.0f ± %.0f\n", pm, ps)
	fmt.Printf("  Time/it:  %.4fs ± %.4fs\n", tm, ts)

	if *trace {
		series := repro.SlidingMean(res.Series(func(s repro.IterStats) float64 { return s.F1 }), 20)
		fmt.Println("\nSliding-window F1 (w=20):")
		step := len(series) / 25
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(series); i += step {
			bar := int(math.Max(series[i], 0) * 50)
			fmt.Printf("  iter %5d  %.3f  %s\n", i, series[i], strings.Repeat("#", bar))
		}
	}

	if dmt, ok := clf.(*repro.DMT); ok {
		fmt.Println("\nFinal DMT structure:")
		fmt.Print(indent(dmt.Describe()))
		splits, replaces, prunes := dmt.Revisions()
		fmt.Printf("\nStructural changes: %d splits, %d replacements, %d prunes\n", splits, replaces, prunes)
		changes := dmt.Changes()
		if len(changes) > 0 {
			fmt.Println("Change log (most recent last):")
			lo := 0
			if len(changes) > 12 {
				lo = len(changes) - 12
				fmt.Printf("  ... %d earlier changes elided ...\n", lo)
			}
			for _, ev := range changes[lo:] {
				fmt.Printf("  step %4d: %-7s depth=%d %s  gain=%.1f (threshold %.1f)\n",
					ev.Step, ev.Kind, ev.Depth, ev.Test(strm.Schema()), ev.Gain, ev.AICThreshold)
			}
		}
	}
}

func indent(s string) string {
	out := ""
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		out += "  " + line + "\n"
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dmtrun:", err)
	os.Exit(1)
}
