// Command dmtbench regenerates the paper's evaluation: Tables I-VI and
// Figures 3-4 of "Dynamic Model Tree for Interpretable Data Stream
// Learning" (ICDE 2022), plus the ablation study described in DESIGN.md.
// Ctrl-C cancels the remaining runs.
//
// Usage:
//
//	dmtbench [-scale 0.05] [-seed 42] [-datasets SEA,Hyperplane]
//	         [-models "DMT,VFDT (MC)"] [-table all|1..6] [-figure all|3|4]
//	         [-parallel N] [-ablation]
//
// Absolute numbers depend on the scale; the paper-reported values are
// printed alongside each cell for shape comparison. -parallel fans the
// experiment cells across workers with identical results; keep it at 1
// when the Table V timings matter.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"repro"
)

func main() {
	var (
		scale     = flag.Float64("scale", 0.02, "fraction of each Table I stream to run (1 = full size)")
		seed      = flag.Int64("seed", 42, "random seed for streams and models")
		batch     = flag.Float64("batch", 0.001, "prequential batch fraction (paper: 0.001)")
		dsFlag    = flag.String("datasets", "", "comma-separated data sets (default: all 13)")
		modelFlag = flag.String("models", "", "comma-separated models (default: all 8)")
		table     = flag.String("table", "all", "which table to print: all,1,2,3,4,5,6,none")
		figure    = flag.String("figure", "all", "which figure to print: all,3,4,none")
		ablation  = flag.Bool("ablation", false, "also run the DMT ablation study")
		parallel  = flag.Int("parallel", 1, fmt.Sprintf("concurrent experiment cells (this machine: up to %d); timing in Table V is only meaningful at 1", runtime.GOMAXPROCS(0)))
		scorer    = flag.String("scorer", "", "evaluate through the serving layer: locked, snapshot or sharded (empty = bare classifiers; snapshot is result-identical to bare, sharded is a different algorithm)")
		shards    = flag.Int("shards", 2, "replica count for -scorer sharded")
		ckptDir   = flag.String("checkpoint", "", "directory persisting every finished cell's result (atomic per-cell files); with -resume an interrupted grid restarts without redoing completed cells")
		resume    = flag.Bool("resume", false, "skip cells already completed in the -checkpoint directory (results are byte-identical to an uninterrupted run)")
		quiet     = flag.Bool("quiet", false, "suppress per-run progress lines")
	)
	flag.Parse()

	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "dmtbench: -resume requires -checkpoint DIR")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	suite := repro.ExperimentSuite{
		Scale:         *scale,
		Seed:          *seed,
		BatchFraction: *batch,
		Datasets:      splitList(*dsFlag),
		Models:        splitList(*modelFlag),
		Parallel:      *parallel,
		ScorerMode:    *scorer,
		Shards:        *shards,
		CheckpointDir: *ckptDir,
		Resume:        *resume,
	}
	if !*quiet {
		suite.Progress = os.Stderr
	}

	mode := *scorer
	if mode == "" {
		mode = "none"
	}
	fmt.Printf("dmtbench: scale=%.3g seed=%d batch=%.4g parallel=%d scorer=%s\n\n", *scale, *seed, *batch, *parallel, mode)
	res, err := suite.RunContext(ctx)
	switch {
	case errors.Is(err, context.Canceled) && res != nil:
		fmt.Fprintln(os.Stderr, "dmtbench: interrupted — rendering the completed runs")
	case err != nil:
		fmt.Fprintln(os.Stderr, "dmtbench:", err)
		os.Exit(1)
	}

	want := func(sel, key string) bool { return sel == "all" || sel == key }
	if want(*table, "1") {
		fmt.Println(res.Table1())
	}
	if want(*table, "2") {
		fmt.Println(res.Table2())
	}
	if want(*table, "3") {
		fmt.Println(res.Table3())
	}
	if want(*table, "4") {
		fmt.Println(res.Table4())
	}
	if want(*table, "5") {
		fmt.Println(res.Table5())
	}
	if want(*table, "6") {
		fmt.Println(res.Table6())
	}
	if want(*figure, "3") {
		fmt.Println(res.Figure3(20))
	}
	if want(*figure, "4") {
		fmt.Println(res.Figure4())
	}

	if *ablation {
		out, err := repro.RunAblation(*scale, *seed, suite.Progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmtbench ablation:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
