// Command dmtbench regenerates the paper's evaluation: Tables I-VI and
// Figures 3-4 of "Dynamic Model Tree for Interpretable Data Stream
// Learning" (ICDE 2022), plus the ablation study described in DESIGN.md.
// Ctrl-C cancels the remaining runs.
//
// Usage:
//
//	dmtbench [-scale 0.05] [-seed 42] [-datasets SEA,Hyperplane]
//	         [-models "DMT,VFDT (MC)"] [-table all|1..6] [-figure all|3|4]
//	         [-parallel N] [-ablation]
//
// Absolute numbers depend on the scale; the paper-reported values are
// printed alongside each cell for shape comparison. -parallel fans the
// experiment cells across workers with identical results; keep it at 1
// when the Table V timings matter.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"repro"
)

func main() {
	var (
		scale     = flag.Float64("scale", 0.02, "fraction of each Table I stream to run (1 = full size)")
		seed      = flag.Int64("seed", 42, "random seed for streams and models")
		batch     = flag.Float64("batch", 0.001, "prequential batch fraction (paper: 0.001)")
		dsFlag    = flag.String("datasets", "", "comma-separated data sets (default: all 13)")
		csvPath   = flag.String("csv", "", "benchmark the selected models on a CSV file instead of the Table I grid")
		classes   = flag.Int("classes", 0, "class count of the -csv stream; > 0 streams the file lazily row by row, 0 loads it into memory and infers the count")
		modelFlag = flag.String("models", "", "comma-separated models (default: all 8)")
		table     = flag.String("table", "all", "which table to print: all,1,2,3,4,5,6,none")
		figure    = flag.String("figure", "all", "which figure to print: all,3,4,none")
		ablation  = flag.Bool("ablation", false, "also run the DMT ablation study")
		catFlag   = flag.Bool("categorical", false, "also run the categorical payoff scenario (native vs factorised splits)")
		raceFlag  = flag.Bool("race", false, "also run the model-racing scenario (fixed arms vs the racer across drift kinds, with leader timelines)")
		parallel  = flag.Int("parallel", 1, fmt.Sprintf("concurrent experiment cells (this machine: up to %d); timing in Table V is only meaningful at 1", runtime.GOMAXPROCS(0)))
		scorer    = flag.String("scorer", "", "evaluate through the serving layer: locked, snapshot or sharded (empty = bare classifiers; snapshot is result-identical to bare, sharded is a different algorithm)")
		shards    = flag.Int("shards", 2, "replica count for -scorer sharded")
		ckptDir   = flag.String("checkpoint", "", "directory persisting every finished cell's result (atomic per-cell files); with -resume an interrupted grid restarts without redoing completed cells")
		resume    = flag.Bool("resume", false, "skip cells already completed in the -checkpoint directory (results are byte-identical to an uninterrupted run)")
		quiet     = flag.Bool("quiet", false, "suppress per-run progress lines")
	)
	flag.Parse()

	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "dmtbench: -resume requires -checkpoint DIR")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *csvPath != "" {
		runCSV(ctx, *csvPath, *classes, splitList(*modelFlag), *seed, *batch)
		return
	}

	suite := repro.ExperimentSuite{
		Scale:         *scale,
		Seed:          *seed,
		BatchFraction: *batch,
		Datasets:      splitList(*dsFlag),
		Models:        splitList(*modelFlag),
		Parallel:      *parallel,
		ScorerMode:    *scorer,
		Shards:        *shards,
		CheckpointDir: *ckptDir,
		Resume:        *resume,
	}
	if !*quiet {
		suite.Progress = os.Stderr
	}

	mode := *scorer
	if mode == "" {
		mode = "none"
	}
	fmt.Printf("dmtbench: scale=%.3g seed=%d batch=%.4g parallel=%d scorer=%s\n\n", *scale, *seed, *batch, *parallel, mode)
	res, err := suite.RunContext(ctx)
	switch {
	case errors.Is(err, context.Canceled) && res != nil:
		fmt.Fprintln(os.Stderr, "dmtbench: interrupted — rendering the completed runs")
	case err != nil:
		fmt.Fprintln(os.Stderr, "dmtbench:", err)
		os.Exit(1)
	}

	want := func(sel, key string) bool { return sel == "all" || sel == key }
	if want(*table, "1") {
		fmt.Println(res.Table1())
	}
	if want(*table, "2") {
		fmt.Println(res.Table2())
	}
	if want(*table, "3") {
		fmt.Println(res.Table3())
	}
	if want(*table, "4") {
		fmt.Println(res.Table4())
	}
	if want(*table, "5") {
		fmt.Println(res.Table5())
	}
	if want(*table, "6") {
		fmt.Println(res.Table6())
	}
	if want(*figure, "3") {
		fmt.Println(res.Figure3(20))
	}
	if want(*figure, "4") {
		fmt.Println(res.Figure4())
	}

	if *catFlag {
		out, err := repro.RunCategoricalScenario(*scale, *seed, suite.Progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmtbench categorical:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	if *raceFlag {
		out, err := repro.RunRaceScenario(*scale, *seed, suite.Progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmtbench race:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	if *ablation {
		out, err := repro.RunAblation(*scale, *seed, suite.Progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmtbench ablation:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}

// runCSV benchmarks the selected models on a CSV file stream instead of
// the Table I grid: each model runs prequentially over the same file and
// one summary row is printed per model. classes > 0 streams the file
// lazily through repro.OpenCSVStream (no whole-file materialisation);
// classes 0 loads it into memory and infers the class count.
func runCSV(ctx context.Context, path string, classes int, models []string, seed int64, batch float64) {
	var strm repro.Stream
	if classes > 0 {
		fs, err := repro.OpenCSVStream(path, classes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmtbench:", err)
			os.Exit(1)
		}
		defer fs.Close()
		strm = fs
	} else {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmtbench:", err)
			os.Exit(1)
		}
		mem, err := repro.ReadCSVStream(f, path, 0)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmtbench:", err)
			os.Exit(1)
		}
		strm = mem
	}
	if len(models) == 0 {
		models = repro.Models()
	}
	fmt.Printf("dmtbench: %s (%d features, %d classes)\n\n", strm.Schema().Name, strm.Schema().NumFeatures, strm.Schema().NumClasses)
	for _, name := range models {
		strm.Reset()
		clf, err := repro.New(name, strm.Schema(), repro.WithSeed(seed))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmtbench: %s: %v\n", name, err)
			continue
		}
		res, err := repro.PrequentialContext(ctx, clf, strm, repro.EvalOptions{BatchFraction: batch})
		interrupted := errors.Is(err, context.Canceled)
		if err != nil && !interrupted {
			fmt.Fprintf(os.Stderr, "dmtbench: %s: %v\n", name, err)
			continue
		}
		f1m, f1s := res.F1()
		spm, _ := res.Splits()
		pm, _ := res.Params()
		tm, _ := res.Seconds()
		fmt.Printf("  %-14s F1 %.3f ± %.3f   splits %6.1f   params %7.0f   %.4fs/it\n", name, f1m, f1s, spm, pm, tm)
		if interrupted {
			fmt.Fprintln(os.Stderr, "dmtbench: interrupted")
			return
		}
	}
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
