// Command dmtserve runs the network prediction service: one process is
// a trainer (it keeps learning a registered model on a stream while
// serving predictions and publishing checkpoint envelopes), any number
// of others are replicas that follow the trainer's envelope feed and
// serve the same model with zero read downtime across installs.
//
// Trainer (train on SEA while serving on :8080):
//
//	dmtserve -addr :8080 -model "VFDT (MC)" -dataset SEA -scale 0.05
//
// Replica (bootstrap from the trainer, then follow its envelopes):
//
//	dmtserve -addr :8081 -follow http://localhost:8080
//
// Replicas negotiate delta chains by default: each poll asks
// GET /v1/envelope?since=<installed> and applies the structural diffs to
// the envelope bytes it already holds, falling back to a full fetch when
// the trainer has compacted the base or a chain fails validation.
// -no-delta forces full envelopes on every install.
//
// Endpoints on either role: POST /v1/predict, POST /v1/predict_batch,
// POST /v1/swap, GET /v1/envelope, GET /healthz, GET /statusz.
//
// -smoke runs a self-test instead of serving: an in-process trainer, a
// few hundred mixed requests including a hot swap mid-traffic, exit 0
// only if every request succeeded (wired into `make serve-smoke`).
//
// -model also accepts a race lineup, e.g.
//
//	dmtserve -addr :8080 -model 'race:glm,vfdt,nb' -dataset Agrawal
//
// which trains every named arm on the stream and serves each prediction
// from the arm currently winning the windowed prequential race
// (/statusz carries the per-arm scoreboard and leader timeline).
// Combined with -smoke it runs the racing self-test: a race trainer on
// a drifting stream under a prediction hammer must change leaders at
// least once while zero requests fail (wired into `make race-smoke`).
//
// -chaos injects deterministic faults from a seeded spec, e.g.
//
//	dmtserve -addr :8081 -follow http://localhost:8080 \
//	    -chaos 'drop@0.2,reset@0.1,status=503@0.1' -chaos-seed 7
//
// In replica mode the faults hit the client side (every fetch to the
// trainer); in trainer mode they hit the accept path (connections
// dropped, delayed, or cut mid-response). Combined with -smoke it runs
// the chaos self-test: a replica following a trainer through ~30%
// injected faults must converge to the trainer's final envelope version
// while a prediction hammer on the replica tolerates zero errors
// (wired into `make chaos-smoke`).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelName = flag.String("model", "VFDT (MC)", "registered model name (trainer mode)")
		dsName    = flag.String("dataset", "SEA", "Table I data set to train on (trainer mode)")
		scale     = flag.Float64("scale", 0.05, "fraction of the Table I stream length")
		seed      = flag.Int64("seed", 42, "random seed")
		batch     = flag.Int("batch", 100, "training batch size in rows")
		shards    = flag.Int("shards", 0, "serve through N sharded replicas (0 = single snapshot scorer)")
		publish   = flag.Int("publish", 1, "snapshot publish cadence in batches")
		ckptPath  = flag.String("checkpoint", "", "bootstrap the model from this checkpoint file instead of training fresh")
		follow    = flag.String("follow", "", "replica mode: bootstrap from and follow this trainer URL")
		noDelta   = flag.Bool("no-delta", false, "replica mode: always fetch full envelopes instead of negotiating delta chains")
		interval  = flag.Duration("interval", 500*time.Millisecond, "replica poll interval")
		wait      = flag.Duration("wait", 10*time.Second, "replica long-poll duration (0 = plain polling)")
		window    = flag.Duration("window", time.Millisecond, "request coalescing window")
		maxBatch  = flag.Int("maxbatch", 64, "max rows per coalesced batch")
		inflight  = flag.Int("inflight", 256, "max in-flight prediction requests before 429")
		smoke     = flag.Bool("smoke", false, "run the self-test and exit")
		chaosSpec = flag.String("chaos", "", "fault-injection spec, e.g. 'drop@0.2,reset@0.1,status=503@0.1,truncate=256@0.1'")
		chaosSeed = flag.Int64("chaos-seed", 1, "fault-injection seed (same seed + traffic order = same faults)")
		replicaID = flag.String("id", "", "replica identity announced to the trainer registry (default replica-<pid>)")
		advertise = flag.String("advertise", "", "URL this replica announces for itself (default http://localhost<addr>)")
		heartbeat = flag.Duration("heartbeat", time.Second, "replica registry heartbeat interval")
		regTTL    = flag.Duration("registry-ttl", 3*time.Second, "trainer registry heartbeat TTL")
		maxLag    = flag.Uint64("max-version-lag", 0, "health-gate replicas more than N envelope versions behind (0 = off)")
	)
	flag.Parse()

	cfg := repro.ServerConfig{
		CoalesceWindow: *window,
		MaxBatch:       *maxBatch,
		MaxInFlight:    *inflight,
		Registry:       repro.RegistryConfig{TTL: *regTTL, MaxVersionLag: *maxLag},
	}

	var chaos *repro.FaultInjector
	if *chaosSpec != "" {
		rules, err := repro.ParseFaults(*chaosSpec)
		if err != nil {
			fail(err)
		}
		chaos = repro.NewFaultInjector(*chaosSeed, rules...)
	}

	if *smoke {
		var err error
		var kind string
		switch {
		case chaos != nil:
			kind, err = "chaos ", runChaosSmoke(cfg, chaos)
		case repro.IsRaceSpec(*modelName):
			kind, err = "race ", runRaceSmoke(cfg, *modelName, *seed)
		default:
			kind, err = "", runSmoke(cfg)
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("dmtserve: %ssmoke test passed\n", kind)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *follow != "" {
		id := *replicaID
		if id == "" {
			id = fmt.Sprintf("replica-%d", os.Getpid())
		}
		adv := *advertise
		if adv == "" {
			adv = "http://localhost" + *addr
		}
		runReplica(ctx, replicaOpts{
			addr: *addr, trainerURL: *follow, id: id, advertise: adv,
			publish: *publish, interval: *interval, wait: *wait,
			heartbeat: *heartbeat, cfg: cfg, chaos: chaos, noDelta: *noDelta,
		})
		return
	}
	runTrainer(ctx, *addr, *modelName, *dsName, *ckptPath, *scale, *seed, *batch, *shards, *publish, cfg, chaos)
}

// runTrainer serves while a training loop feeds the scorer; the stream
// is replayed from the start whenever it runs dry, so the process keeps
// learning (and keeps publishing envelopes) for as long as it lives.
func runTrainer(ctx context.Context, addr, modelName, dsName, ckptPath string, scale float64, seed int64, batchSize, shards, publish int, cfg repro.ServerConfig, chaos *repro.FaultInjector) {
	entry, err := repro.DatasetByName(dsName)
	if err != nil {
		fail(err)
	}
	strm := entry.New(scale, seed)

	var scorer repro.Scorer
	if ckptPath != "" {
		f, err := os.Open(ckptPath)
		if err != nil {
			fail(err)
		}
		scorer, err = repro.ScorerFromCheckpoint(f, publish)
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "dmtserve: resumed %s from %s\n", scorer.Name(), ckptPath)
	} else {
		opts := []repro.ServeOption{
			repro.WithPublishEvery(publish),
			repro.WithServeModelOptions(repro.WithSeed(seed)),
		}
		if shards > 0 {
			opts = append(opts, repro.WithShards(shards))
		}
		scorer, err = repro.Serve(modelName, strm.Schema(), opts...)
		if err != nil {
			// The registry error already lists the registered names; add
			// the lineup grammar so a near-miss like -model race finds it.
			fail(fmt.Errorf("-model %q: %w (a race lineup also works: -model 'race:dmt,vfdt,arf')", modelName, err))
		}
	}

	go func() {
		rows := 0
		for ctx.Err() == nil {
			b, err := repro.NextBatchContext(ctx, strm, batchSize)
			if errors.Is(err, repro.ErrEndOfStream) {
				strm.Reset()
				continue
			}
			if err != nil {
				return
			}
			scorer.Learn(b)
			rows += b.Len()
			if rows%100000 < batchSize {
				v, _ := scorer.StructureVersion()
				fmt.Fprintf(os.Stderr, "dmtserve: trained %d rows, structure version %d\n", rows, v)
			}
		}
	}()

	fmt.Fprintf(os.Stderr, "dmtserve: trainer serving %s on %s (dataset %s)\n", scorer.Name(), addr, dsName)
	ps := repro.NewPredictionServer(scorer, cfg)
	defer ps.Close()
	var ln net.Listener
	if chaos != nil {
		// Trainer-side chaos faults the accept path: connections are
		// dropped, delayed, or cut mid-response before any handler
		// runs — what replicas see when the trainer's host misbehaves.
		raw, err := net.Listen("tcp", addr)
		if err != nil {
			fail(err)
		}
		ln = chaos.Listener(raw)
		fmt.Fprintf(os.Stderr, "dmtserve: trainer listener under chaos: %s\n", chaos)
	}
	if err := repro.ServePrediction(ctx, addr, ps, ln); err != nil && !errors.Is(err, context.Canceled) {
		fail(err)
	}
}

type replicaOpts struct {
	addr       string
	trainerURL string
	id         string
	advertise  string
	publish    int
	interval   time.Duration
	wait       time.Duration
	heartbeat  time.Duration
	cfg        repro.ServerConfig
	chaos      *repro.FaultInjector
	noDelta    bool
}

// runReplica bootstraps a scorer from the trainer's envelope, serves
// it, and follows the trainer so every structural advance is installed
// with zero read downtime. The follow loop is the resilient client:
// backoff with jitter, a circuit breaker against a down trainer,
// per-cause error counters surfaced in the logs, drain-on-install
// readiness, staleness stamping, and registry heartbeats so the
// trainer's /v1/replicas health-gates this replica.
func runReplica(ctx context.Context, o replicaOpts) {
	var transport http.RoundTripper
	if o.chaos != nil {
		transport = o.chaos.RoundTripper(nil)
		fmt.Fprintf(os.Stderr, "dmtserve: replica client under chaos: %s\n", o.chaos)
	}
	client := &http.Client{Timeout: o.wait + 30*time.Second, Transport: transport}

	// Bootstrap with retries: a trainer mid-restart (or injected chaos)
	// must not kill a replica before it ever serves. The raw bootstrap
	// bytes seed the follower's delta base, so its first poll can already
	// answer with a chain instead of a full envelope.
	var scorer repro.Scorer
	var v uint64
	var bootRaw []byte
	for attempt := 0; ; attempt++ {
		var err error
		scorer, v, bootRaw, err = repro.BootstrapScorerRaw(ctx, client, o.trainerURL, o.publish)
		if err == nil {
			break
		}
		if ctx.Err() != nil || attempt >= 9 {
			fail(fmt.Errorf("bootstrap from %s: %w", o.trainerURL, err))
		}
		delay := time.Duration(attempt+1) * 500 * time.Millisecond
		fmt.Fprintf(os.Stderr, "dmtserve: bootstrap attempt %d failed (%v), retrying in %v\n", attempt+1, err, delay)
		select {
		case <-ctx.Done():
			fail(ctx.Err())
		case <-time.After(delay):
		}
	}
	fmt.Fprintf(os.Stderr, "dmtserve: replica bootstrapped %s at version %d from %s\n", scorer.Name(), v, o.trainerURL)

	ps := repro.NewPredictionServer(scorer, o.cfg)
	defer ps.Close()
	f := repro.NewFollower(o.trainerURL, scorer, repro.FollowConfig{
		Interval:  o.interval,
		Wait:      o.wait,
		Transport: transport,
		NoDelta:   o.noDelta,
		Drainer:   ps, // not-ready while an envelope installs
		OnInstall: func(v uint64) {
			fmt.Fprintf(os.Stderr, "dmtserve: installed envelope at version %d\n", v)
		},
		OnError: func(cause repro.FollowCause, err error) {
			fmt.Fprintf(os.Stderr, "dmtserve: follow %s error: %v\n", cause, err)
		},
		OnStateChange: func(from, to repro.BreakerState) {
			fmt.Fprintf(os.Stderr, "dmtserve: trainer breaker %s -> %s\n", from, to)
		},
	})
	ps.SetStalenessSource(f) // degraded responses carry X-Repro-Staleness
	if !o.noDelta {
		f.SeedInstalled(v, bootRaw)
	}
	go f.Run(ctx)
	go repro.RunHeartbeats(ctx, nil, o.trainerURL, o.heartbeat, func() repro.ReplicaAnnounce {
		iv, hasV := f.InstalledVersion()
		return repro.ReplicaAnnounce{
			ID: o.id, URL: o.advertise,
			Version: iv, HasVersion: hasV,
			Ready: ps.Ready(),
		}
	})

	fmt.Fprintf(os.Stderr, "dmtserve: replica %s serving %s on %s\n", o.id, scorer.Name(), o.addr)
	if err := repro.ServePrediction(ctx, o.addr, ps, nil); err != nil && !errors.Is(err, context.Canceled) {
		fail(err)
	}
	st := f.Stats()
	fmt.Fprintf(os.Stderr, "dmtserve: follow stats: %d fetches, %d installs (%d via delta, %d delta fallbacks), %d retries, errors dial=%d timeout=%d status=%d decode=%d restore=%d, breaker opened %d times\n",
		st.Fetches, st.Installs, st.DeltaInstalls, st.DeltaFallbacks, st.Retries, st.DialErrors, st.TimeoutErrors, st.StatusErrors, st.DecodeErrors, st.RestoreErrors, st.BreakerOpens)
}

// runSmoke is the CI self-test: an in-process trainer under live
// training, a few hundred mixed requests across both endpoints and
// both wire formats, one hot swap mid-traffic, zero tolerated errors.
func runSmoke(cfg repro.ServerConfig) error {
	entry, err := repro.DatasetByName("SEA")
	if err != nil {
		return err
	}
	strm := entry.New(0.05, 1)
	scorer, err := repro.Serve("VFDT (MC)", strm.Schema(), repro.WithServeModelOptions(repro.WithSeed(1)))
	if err != nil {
		return err
	}
	// Warm the model so the swap envelope below has structure in it.
	for i := 0; i < 100; i++ {
		b, err := repro.NextBatch(strm, 100)
		if errors.Is(err, repro.ErrEndOfStream) {
			strm.Reset()
			continue
		}
		if err != nil {
			return err
		}
		scorer.Learn(b)
	}
	var env bytes.Buffer
	if err := scorer.Checkpoint(&env); err != nil {
		return err
	}

	ps := repro.NewPredictionServer(scorer, cfg)
	defer ps.Close()
	ts := httptest.NewServer(ps.Handler())
	defer ts.Close()

	// Keep training while the traffic runs.
	trainCtx, stopTraining := context.WithCancel(context.Background())
	defer stopTraining()
	go func() {
		for trainCtx.Err() == nil {
			b, err := repro.NextBatchContext(trainCtx, strm, 100)
			if errors.Is(err, repro.ErrEndOfStream) {
				strm.Reset()
				continue
			}
			if err != nil {
				return
			}
			scorer.Learn(b)
		}
	}()

	probe, err := repro.NextBatch(strm, 32)
	if err != nil {
		return err
	}
	const (
		workers  = 8
		requests = 400
	)
	var failures atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < requests/workers; i++ {
				var resp *http.Response
				var err error
				if i%2 == 0 {
					body, _ := json.Marshal(map[string]any{"x": probe.X[(w+i)%len(probe.X)]})
					resp, err = http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
				} else {
					body, _ := json.Marshal(map[string]any{"rows": probe.X})
					resp, err = http.Post(ts.URL+"/v1/predict_batch", "application/json", bytes.NewReader(body))
				}
				if err != nil {
					failures.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}

	// One hot swap in the middle of the traffic.
	time.Sleep(20 * time.Millisecond)
	resp, err := http.Post(ts.URL+"/v1/swap", "application/x-repro-envelope", bytes.NewReader(env.Bytes()))
	if err != nil {
		return fmt.Errorf("hot swap: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("hot swap answered %s", resp.Status)
	}
	wg.Wait()
	stopTraining()

	if n := failures.Load(); n != 0 {
		return fmt.Errorf("%d of %d requests failed", n, requests)
	}

	// The status page must reflect the traffic and the swap.
	resp, err = http.Get(ts.URL + "/statusz")
	if err != nil {
		return err
	}
	var st repro.ServerStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if st.Swaps != 1 {
		return fmt.Errorf("statusz reports %d swaps, want 1", st.Swaps)
	}
	if st.ServedRows == 0 {
		return fmt.Errorf("statusz reports no served rows after %d requests", requests)
	}
	fmt.Fprintf(os.Stderr, "dmtserve: smoke served %d rows in %d coalesced batches, %d rejected, 1 swap\n",
		st.ServedRows, st.CoalescedBatches, st.Rejected)
	return nil
}

// runChaosSmoke is the fault-tolerance self-test: a replica follows an
// in-process trainer through the injected fault spec, a prediction
// hammer runs against the replica with zero tolerated errors, and the
// run only passes if faults actually fired, the breaker machinery saw
// them, and the replica converged to the trainer's final envelope
// version.
func runChaosSmoke(cfg repro.ServerConfig, chaos *repro.FaultInjector) error {
	entry, err := repro.DatasetByName("SEA")
	if err != nil {
		return err
	}
	strm := entry.New(0.05, 1)
	trainer, err := repro.Serve("VFDT (MC)", strm.Schema(), repro.WithServeModelOptions(repro.WithSeed(1)))
	if err != nil {
		return err
	}
	learn := func(batches int) error {
		for i := 0; i < batches; i++ {
			b, err := repro.NextBatch(strm, 100)
			if errors.Is(err, repro.ErrEndOfStream) {
				strm.Reset()
				continue
			}
			if err != nil {
				return err
			}
			trainer.Learn(b)
		}
		return nil
	}
	if err := learn(100); err != nil {
		return err
	}

	trainerPS := repro.NewPredictionServer(trainer, cfg)
	defer trainerPS.Close()
	trainerTS := httptest.NewServer(trainerPS.Handler())
	defer trainerTS.Close()

	// Every replica-side request runs through the injector.
	transport := chaos.RoundTripper(nil)
	client := &http.Client{Timeout: 5 * time.Second, Transport: transport}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var replica repro.Scorer
	var bootV uint64
	var bootRaw []byte
	for attempt := 0; ; attempt++ {
		var err error
		replica, bootV, bootRaw, err = repro.BootstrapScorerRaw(ctx, client, trainerTS.URL, 1)
		if err == nil {
			break
		}
		if attempt >= 50 {
			return fmt.Errorf("bootstrap never survived the chaos: %w", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	replicaPS := repro.NewPredictionServer(replica, cfg)
	defer replicaPS.Close()
	f := repro.NewFollower(trainerTS.URL, replica, repro.FollowConfig{
		Interval:         5 * time.Millisecond,
		Timeout:          5 * time.Second,
		Transport:        transport,
		BackoffBase:      5 * time.Millisecond,
		BackoffMax:       100 * time.Millisecond,
		BreakerThreshold: 5,
		BreakerCooldown:  100 * time.Millisecond,
		Drainer:          replicaPS,
	})
	replicaPS.SetStalenessSource(f)
	// Seed the delta base from the bootstrap envelope: the follow loop
	// under chaos then exercises the delta path too — chains that arrive
	// intact install incrementally, corrupted ones fall back to full.
	f.SeedInstalled(bootV, bootRaw)
	followCtx, stopFollow := context.WithCancel(ctx)
	defer stopFollow()
	followDone := make(chan struct{})
	go func() { defer close(followDone); f.Run(followCtx) }()
	replicaTS := httptest.NewServer(replicaPS.Handler())
	defer replicaTS.Close()

	// Hammer the replica while the trainer advances under chaos: zero
	// tolerated prediction errors — fault tolerance means degraded,
	// never down.
	probe, err := repro.NextBatch(strm, 16)
	if err != nil {
		return err
	}
	hammerStop := make(chan struct{})
	var reads, readFailures atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-hammerStop:
					return
				default:
				}
				body, _ := json.Marshal(map[string]any{"x": probe.X[(w+i)%len(probe.X)]})
				resp, err := http.Post(replicaTS.URL+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					readFailures.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					readFailures.Add(1)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				reads.Add(1)
			}
		}(w)
	}

	// Keep training so envelope versions move while faults fire, then
	// freeze the trainer and require convergence to its final version.
	if err := learn(200); err != nil {
		return err
	}
	// Let chaos traffic accumulate until every rule has had real
	// chances to fire. Time-bounded: an injected 429 carries a 1s
	// Retry-After that the follower honours, throttling the poll loop
	// to ~1 request/second while the storm lasts.
	trafficDeadline := time.Now().Add(20 * time.Second)
	for chaos.Seen() < 120 && time.Now().Before(trafficDeadline) {
		time.Sleep(10 * time.Millisecond)
	}
	finalV, _ := trainer.StructureVersion()
	deadline := time.Now().Add(60 * time.Second)
	for {
		if v, ok := f.InstalledVersion(); ok && v == finalV {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica never converged to trainer version %d: %+v", finalV, f.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(hammerStop)
	wg.Wait()
	stopFollow()
	<-followDone

	st := f.Stats()
	if n := readFailures.Load(); n != 0 {
		return fmt.Errorf("%d of %d replica reads failed under chaos", n, reads.Load())
	}
	if reads.Load() == 0 {
		return fmt.Errorf("prediction hammer never ran")
	}
	if chaos.InjectedTotal() == 0 {
		return fmt.Errorf("no faults fired (%d requests seen) — the smoke proved nothing", chaos.Seen())
	}
	if st.Errors() == 0 {
		return fmt.Errorf("faults fired but the follower counted no errors: %+v", st)
	}
	// The follower is delta-seeded, so every install attempt starts as a
	// ?since= negotiation: any install at all must show up as a delta
	// install or a counted fallback to full.
	if st.Installs > 0 && st.DeltaInstalls+st.DeltaFallbacks == 0 {
		return fmt.Errorf("installs happened but the delta path never engaged: %+v", st)
	}
	fmt.Fprintf(os.Stderr, "dmtserve: chaos smoke: %d faults over %d requests (%s), %d reads ok, converged at version %d; %d installs (%d via delta, %d delta fallbacks); follow errors dial=%d timeout=%d status=%d decode=%d restore=%d, %d breaker opens\n",
		chaos.InjectedTotal(), chaos.Seen(), chaos, reads.Load(), finalV,
		st.Installs, st.DeltaInstalls, st.DeltaFallbacks,
		st.DialErrors, st.TimeoutErrors, st.StatusErrors, st.DecodeErrors, st.RestoreErrors, st.BreakerOpens)
	return nil
}

// runRaceSmoke is the model-racing self-test: a race trainer (the
// lineup from -model) learns a drifting stream — a linearly separable
// hyperplane regime alternating with a Gaussian-cluster regime, so no
// single arm wins throughout — while a prediction hammer runs against
// it. The run passes only if zero requests failed, the leader changed
// at least once, and /statusz carries the per-arm race scoreboard
// (wired into `make race-smoke`).
func runRaceSmoke(cfg repro.ServerConfig, spec string, seed int64) error {
	const (
		samples  = 24_000
		segments = 4
		features = 5
	)
	linear := repro.NewHyperplane(samples, features, 0.02, seed+1)
	clusters := repro.NewClusterStream(repro.ClusterConfig{
		Name: "clusters", Samples: samples, Features: features, Classes: 2,
		ClustersPerClass: 3, Std: 0.07, Seed: seed + 2,
	})
	strm := repro.NewRecurringSwitch(samples, segments, seed, linear, clusters)

	scorer, err := repro.Serve(spec, strm.Schema(), repro.WithServeModelOptions(repro.WithSeed(seed)))
	if err != nil {
		return err
	}

	ps := repro.NewPredictionServer(scorer, cfg)
	defer ps.Close()
	ts := httptest.NewServer(ps.Handler())
	defer ts.Close()

	probe, err := repro.NextBatch(strm, 32)
	if err != nil {
		return err
	}
	scorer.Learn(probe)

	// Hammer the racer while it trains through every drift: leader swaps
	// must never surface as request errors.
	hammerStop := make(chan struct{})
	var reads, readFailures atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-hammerStop:
					return
				default:
				}
				body, _ := json.Marshal(map[string]any{"x": probe.X[(w+i)%len(probe.X)]})
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					readFailures.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					readFailures.Add(1)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				reads.Add(1)
			}
		}(w)
	}

	for {
		b, err := repro.NextBatch(strm, 100)
		if errors.Is(err, repro.ErrEndOfStream) {
			break
		}
		if err != nil {
			close(hammerStop)
			wg.Wait()
			return err
		}
		scorer.Learn(b)
	}
	// Training can outrun the HTTP hammer; keep serving until the hammer
	// has produced a meaningful request count (time-bounded).
	deadline := time.Now().Add(10 * time.Second)
	for reads.Load() < 400 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(hammerStop)
	wg.Wait()

	if n := readFailures.Load(); n != 0 {
		return fmt.Errorf("%d of %d predictions failed during the race", n, reads.Load())
	}
	if reads.Load() == 0 {
		return fmt.Errorf("prediction hammer never ran")
	}

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		return err
	}
	var st repro.ServerStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if st.Race == nil {
		return fmt.Errorf("statusz carries no race scoreboard for %s", scorer.Name())
	}
	if len(st.Race.Arms) < 2 {
		return fmt.Errorf("race scoreboard lists %d arms, want >= 2", len(st.Race.Arms))
	}
	if st.Race.LeaderChanges == 0 {
		return fmt.Errorf("leader never changed across %d rows and %d re-races — the race proved nothing", st.Race.Rows, st.Race.ReRaces)
	}
	if st.ServedRows == 0 {
		return fmt.Errorf("statusz reports no served rows after %d requests", reads.Load())
	}
	fmt.Fprintf(os.Stderr, "dmtserve: race smoke: %s served %d reads over %d rows, %d re-races, %d leader changes (%d drift-triggered), final leader %s\n",
		scorer.Name(), reads.Load(), st.Race.Rows, st.Race.ReRaces, st.Race.LeaderChanges, st.Race.DriftChanges, st.Race.Leader)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dmtserve:", err)
	os.Exit(1)
}
