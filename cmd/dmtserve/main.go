// Command dmtserve runs the network prediction service: one process is
// a trainer (it keeps learning a registered model on a stream while
// serving predictions and publishing checkpoint envelopes), any number
// of others are replicas that follow the trainer's envelope feed and
// serve the same model with zero read downtime across installs.
//
// Trainer (train on SEA while serving on :8080):
//
//	dmtserve -addr :8080 -model "VFDT (MC)" -dataset SEA -scale 0.05
//
// Replica (bootstrap from the trainer, then follow its envelopes):
//
//	dmtserve -addr :8081 -follow http://localhost:8080
//
// Endpoints on either role: POST /v1/predict, POST /v1/predict_batch,
// POST /v1/swap, GET /v1/envelope, GET /healthz, GET /statusz.
//
// -smoke runs a self-test instead of serving: an in-process trainer, a
// few hundred mixed requests including a hot swap mid-traffic, exit 0
// only if every request succeeded (wired into `make serve-smoke`).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelName = flag.String("model", "VFDT (MC)", "registered model name (trainer mode)")
		dsName    = flag.String("dataset", "SEA", "Table I data set to train on (trainer mode)")
		scale     = flag.Float64("scale", 0.05, "fraction of the Table I stream length")
		seed      = flag.Int64("seed", 42, "random seed")
		batch     = flag.Int("batch", 100, "training batch size in rows")
		shards    = flag.Int("shards", 0, "serve through N sharded replicas (0 = single snapshot scorer)")
		publish   = flag.Int("publish", 1, "snapshot publish cadence in batches")
		ckptPath  = flag.String("checkpoint", "", "bootstrap the model from this checkpoint file instead of training fresh")
		follow    = flag.String("follow", "", "replica mode: bootstrap from and follow this trainer URL")
		interval  = flag.Duration("interval", 500*time.Millisecond, "replica poll interval")
		wait      = flag.Duration("wait", 10*time.Second, "replica long-poll duration (0 = plain polling)")
		window    = flag.Duration("window", time.Millisecond, "request coalescing window")
		maxBatch  = flag.Int("maxbatch", 64, "max rows per coalesced batch")
		inflight  = flag.Int("inflight", 256, "max in-flight prediction requests before 429")
		smoke     = flag.Bool("smoke", false, "run the self-test and exit")
	)
	flag.Parse()

	cfg := repro.ServerConfig{
		CoalesceWindow: *window,
		MaxBatch:       *maxBatch,
		MaxInFlight:    *inflight,
	}

	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fail(err)
		}
		fmt.Println("dmtserve: smoke test passed")
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *follow != "" {
		runReplica(ctx, *addr, *follow, *publish, *interval, *wait, cfg)
		return
	}
	runTrainer(ctx, *addr, *modelName, *dsName, *ckptPath, *scale, *seed, *batch, *shards, *publish, cfg)
}

// runTrainer serves while a training loop feeds the scorer; the stream
// is replayed from the start whenever it runs dry, so the process keeps
// learning (and keeps publishing envelopes) for as long as it lives.
func runTrainer(ctx context.Context, addr, modelName, dsName, ckptPath string, scale float64, seed int64, batchSize, shards, publish int, cfg repro.ServerConfig) {
	entry, err := repro.DatasetByName(dsName)
	if err != nil {
		fail(err)
	}
	strm := entry.New(scale, seed)

	var scorer repro.Scorer
	if ckptPath != "" {
		f, err := os.Open(ckptPath)
		if err != nil {
			fail(err)
		}
		scorer, err = repro.ScorerFromCheckpoint(f, publish)
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "dmtserve: resumed %s from %s\n", scorer.Name(), ckptPath)
	} else {
		opts := []repro.ServeOption{
			repro.WithPublishEvery(publish),
			repro.WithServeModelOptions(repro.WithSeed(seed)),
		}
		if shards > 0 {
			opts = append(opts, repro.WithShards(shards))
		}
		scorer, err = repro.Serve(modelName, strm.Schema(), opts...)
		if err != nil {
			fail(err)
		}
	}

	go func() {
		rows := 0
		for ctx.Err() == nil {
			b, err := repro.NextBatchContext(ctx, strm, batchSize)
			if errors.Is(err, repro.ErrEndOfStream) {
				strm.Reset()
				continue
			}
			if err != nil {
				return
			}
			scorer.Learn(b)
			rows += b.Len()
			if rows%100000 < batchSize {
				v, _ := scorer.StructureVersion()
				fmt.Fprintf(os.Stderr, "dmtserve: trained %d rows, structure version %d\n", rows, v)
			}
		}
	}()

	fmt.Fprintf(os.Stderr, "dmtserve: trainer serving %s on %s (dataset %s)\n", scorer.Name(), addr, dsName)
	if err := repro.ListenAndServe(ctx, addr, scorer, cfg); err != nil && !errors.Is(err, context.Canceled) {
		fail(err)
	}
}

// runReplica bootstraps a scorer from the trainer's envelope, serves
// it, and follows the trainer so every structural advance is installed
// with zero read downtime.
func runReplica(ctx context.Context, addr, trainerURL string, publish int, interval, wait time.Duration, cfg repro.ServerConfig) {
	scorer, v, err := repro.BootstrapScorer(ctx, trainerURL, publish)
	if err != nil {
		fail(fmt.Errorf("bootstrap from %s: %w", trainerURL, err))
	}
	fmt.Fprintf(os.Stderr, "dmtserve: replica bootstrapped %s at version %d from %s\n", scorer.Name(), v, trainerURL)

	go repro.Follow(ctx, trainerURL, scorer, repro.FollowConfig{
		Interval: interval,
		Wait:     wait,
		OnInstall: func(v uint64) {
			fmt.Fprintf(os.Stderr, "dmtserve: installed envelope at version %d\n", v)
		},
	})

	fmt.Fprintf(os.Stderr, "dmtserve: replica serving %s on %s\n", scorer.Name(), addr)
	if err := repro.ListenAndServe(ctx, addr, scorer, cfg); err != nil && !errors.Is(err, context.Canceled) {
		fail(err)
	}
}

// runSmoke is the CI self-test: an in-process trainer under live
// training, a few hundred mixed requests across both endpoints and
// both wire formats, one hot swap mid-traffic, zero tolerated errors.
func runSmoke(cfg repro.ServerConfig) error {
	entry, err := repro.DatasetByName("SEA")
	if err != nil {
		return err
	}
	strm := entry.New(0.05, 1)
	scorer, err := repro.Serve("VFDT (MC)", strm.Schema(), repro.WithServeModelOptions(repro.WithSeed(1)))
	if err != nil {
		return err
	}
	// Warm the model so the swap envelope below has structure in it.
	for i := 0; i < 100; i++ {
		b, err := repro.NextBatch(strm, 100)
		if errors.Is(err, repro.ErrEndOfStream) {
			strm.Reset()
			continue
		}
		if err != nil {
			return err
		}
		scorer.Learn(b)
	}
	var env bytes.Buffer
	if err := scorer.Checkpoint(&env); err != nil {
		return err
	}

	ps := repro.NewPredictionServer(scorer, cfg)
	defer ps.Close()
	ts := httptest.NewServer(ps.Handler())
	defer ts.Close()

	// Keep training while the traffic runs.
	trainCtx, stopTraining := context.WithCancel(context.Background())
	defer stopTraining()
	go func() {
		for trainCtx.Err() == nil {
			b, err := repro.NextBatchContext(trainCtx, strm, 100)
			if errors.Is(err, repro.ErrEndOfStream) {
				strm.Reset()
				continue
			}
			if err != nil {
				return
			}
			scorer.Learn(b)
		}
	}()

	probe, err := repro.NextBatch(strm, 32)
	if err != nil {
		return err
	}
	const (
		workers  = 8
		requests = 400
	)
	var failures atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < requests/workers; i++ {
				var resp *http.Response
				var err error
				if i%2 == 0 {
					body, _ := json.Marshal(map[string]any{"x": probe.X[(w+i)%len(probe.X)]})
					resp, err = http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
				} else {
					body, _ := json.Marshal(map[string]any{"rows": probe.X})
					resp, err = http.Post(ts.URL+"/v1/predict_batch", "application/json", bytes.NewReader(body))
				}
				if err != nil {
					failures.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}

	// One hot swap in the middle of the traffic.
	time.Sleep(20 * time.Millisecond)
	resp, err := http.Post(ts.URL+"/v1/swap", "application/x-repro-envelope", bytes.NewReader(env.Bytes()))
	if err != nil {
		return fmt.Errorf("hot swap: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("hot swap answered %s", resp.Status)
	}
	wg.Wait()
	stopTraining()

	if n := failures.Load(); n != 0 {
		return fmt.Errorf("%d of %d requests failed", n, requests)
	}

	// The status page must reflect the traffic and the swap.
	resp, err = http.Get(ts.URL + "/statusz")
	if err != nil {
		return err
	}
	var st repro.ServerStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if st.Swaps != 1 {
		return fmt.Errorf("statusz reports %d swaps, want 1", st.Swaps)
	}
	if st.ServedRows == 0 {
		return fmt.Errorf("statusz reports no served rows after %d requests", requests)
	}
	fmt.Fprintf(os.Stderr, "dmtserve: smoke served %d rows in %d coalesced batches, %d rejected, 1 swap\n",
		st.ServedRows, st.CoalescedBatches, st.Rejected)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dmtserve:", err)
	os.Exit(1)
}
