// Command datagen materialises any Table I stream to CSV so it can be
// replayed, inspected, or consumed by external tooling.
//
// Usage:
//
//	datagen -dataset SEA -scale 0.01 -out sea.csv [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		dsName = flag.String("dataset", "SEA", "Table I data set name")
		scale  = flag.Float64("scale", 0.01, "fraction of the stream length")
		out    = flag.String("out", "", "output path (default stdout)")
		seed   = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	entry, err := repro.DatasetByName(*dsName)
	if err != nil {
		fail(err)
	}
	strm := entry.New(*scale, *seed)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	rows, err := repro.WriteCSVStream(w, strm)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d rows of %s\n", rows, entry.DisplayName())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
