// Command benchjson converts `go test -bench` text output into JSON,
// optionally joining it with a recorded baseline run to compute per-
// benchmark speedups. It backs `make bench`, which tracks the hot-path
// perf trajectory (ns/op, B/op, allocs/op) in a BENCH_PR<n>.json per
// perf round, each joined against the baseline recorded in bench/
// before that round's change.
//
// It can additionally join the BENCH_PR*.json documents of earlier perf
// rounds (-history) into one cross-PR trend table, embedded in the
// output document and printed to stderr, so the whole perf trajectory
// reads in one place.
//
// Usage:
//
//	go test -run '^$' -bench 'Op$' -benchmem ./... > current.txt
//	benchjson -new current.txt -old bench/BASELINE_PR4.txt \
//	    -history BENCH_PR2.json,BENCH_PR3.json -out BENCH_PR4.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches the fixed prefix of one benchmark result line, e.g.
// "BenchmarkLearnOp/m=50-8   1992   617543 ns/op   32479 B/op   127 allocs/op".
// Everything after ns/op — B/op, allocs/op, and any b.ReportMetric
// custom metrics (the server load benchmark reports p50-ns, p99-ns and
// qps) — is parsed as value/unit pairs by metricPair.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// metricPair matches one "value unit" measurement after ns/op.
var metricPair = regexp.MustCompile(`([\d.]+(?:e[+-]?\d+)?) (\S+)`)

// Result is one benchmark measurement, joined with its baseline when the
// baseline run contains the same benchmark name.
type Result struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra holds b.ReportMetric custom metrics by unit (e.g. the server
	// load benchmark's "p50-ns", "p99-ns", "qps").
	Extra map[string]float64 `json:"extra,omitempty"`

	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineBytesPerOp  float64 `json:"baseline_b_per_op,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`

	// HistoryNsPerOp maps an earlier BENCH_PR*.json label to that
	// round's ns/op for this benchmark (-history).
	HistoryNsPerOp map[string]float64 `json:"history_ns_per_op,omitempty"`
}

type doc struct {
	Note       string   `json:"note"`
	Benchmarks []Result `json:"benchmarks"`
	// Trend is the rendered cross-PR ns/op table (-history).
	Trend []string `json:"trend,omitempty"`
}

func parse(path string) (map[string]Result, []string, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		r = f
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	out := map[string]Result{}
	var order []string
	start := 0
	for pos := 0; pos <= len(raw); pos++ {
		if pos != len(raw) && raw[pos] != '\n' {
			continue
		}
		line := string(raw[start:pos])
		start = pos + 1
		mm := benchLine.FindStringSubmatch(line)
		if mm == nil {
			continue
		}
		iters, _ := strconv.ParseInt(mm[2], 10, 64)
		ns, _ := strconv.ParseFloat(mm[3], 64)
		r := Result{Name: mm[1], Iters: iters, NsPerOp: ns}
		for _, pair := range metricPair.FindAllStringSubmatch(mm[4], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			switch pair[2] {
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[pair[2]] = v
			}
		}
		if _, dup := out[mm[1]]; !dup {
			order = append(order, mm[1])
		}
		out[mm[1]] = r
	}
	return out, order, nil
}

// loadHistory reads one earlier BENCH_PR*.json document into a
// name -> ns/op map.
func loadHistory(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(d.Benchmarks))
	for _, b := range d.Benchmarks {
		out[b.Name] = b.NsPerOp
	}
	return out, nil
}

// trendTable renders benchmarks as rows and perf rounds as columns,
// covering the union of current and historical names — a benchmark
// retired or renamed since an earlier round still shows, with "-" in
// the rounds that lack it.
func trendTable(order []string, labels []string, rounds []map[string]float64, cur map[string]Result) []string {
	names := append([]string{}, order...)
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	var historyOnly []string
	for _, h := range rounds {
		for n := range h {
			if !seen[n] {
				seen[n] = true
				historyOnly = append(historyOnly, n)
			}
		}
	}
	sort.Strings(historyOnly)
	names = append(names, historyOnly...)

	header := fmt.Sprintf("%-44s", "benchmark (ns/op)")
	for _, l := range labels {
		header += fmt.Sprintf(" %12s", l)
	}
	header += fmt.Sprintf(" %12s", "current")
	lines := []string{header}
	cell := func(v float64, ok bool) string {
		if !ok {
			return fmt.Sprintf(" %12s", "-")
		}
		return fmt.Sprintf(" %12.1f", v)
	}
	for _, name := range names {
		row := fmt.Sprintf("%-44s", name)
		for _, h := range rounds {
			v, ok := h[name]
			row += cell(v, ok)
		}
		c, ok := cur[name]
		row += cell(c.NsPerOp, ok)
		lines = append(lines, row)
	}
	return lines
}

func main() {
	newPath := flag.String("new", "-", "current `go test -bench` output ('-' = stdin)")
	oldPath := flag.String("old", "", "optional baseline `go test -bench` output")
	histPaths := flag.String("history", "", "comma-separated earlier BENCH_PR*.json files to join into a trend table")
	outPath := flag.String("out", "", "output JSON path (default stdout)")
	note := flag.String("note", "micro-benchmarks of the learner hot paths; speedup = baseline_ns/current_ns", "note embedded in the document")
	flag.Parse()

	cur, order, err := parse(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	base := map[string]Result{}
	if *oldPath != "" {
		if base, _, err = parse(*oldPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
			os.Exit(1)
		}
	}

	var histLabels []string
	var history []map[string]float64
	if *histPaths != "" {
		for _, p := range strings.Split(*histPaths, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			h, err := loadHistory(p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: history: %v\n", err)
				os.Exit(1)
			}
			histLabels = append(histLabels, strings.TrimSuffix(filepath.Base(p), ".json"))
			history = append(history, h)
		}
	}

	d := doc{Note: *note}
	sort.Strings(order)
	for _, name := range order {
		r := cur[name]
		if b, ok := base[name]; ok {
			r.BaselineNsPerOp = b.NsPerOp
			r.BaselineBytesPerOp = b.BytesPerOp
			r.BaselineAllocsPerOp = b.AllocsPerOp
			if r.NsPerOp > 0 {
				r.Speedup = b.NsPerOp / r.NsPerOp
			}
		}
		for i, h := range history {
			if v, ok := h[name]; ok {
				if r.HistoryNsPerOp == nil {
					r.HistoryNsPerOp = map[string]float64{}
				}
				r.HistoryNsPerOp[histLabels[i]] = v
			}
		}
		d.Benchmarks = append(d.Benchmarks, r)
	}
	if len(history) > 0 {
		d.Trend = trendTable(order, histLabels, history, cur)
		for _, line := range d.Trend {
			fmt.Fprintln(os.Stderr, line)
		}
	}

	enc, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
