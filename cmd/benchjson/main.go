// Command benchjson converts `go test -bench` text output into JSON,
// optionally joining it with a recorded baseline run to compute per-
// benchmark speedups. It backs `make bench`, which tracks the hot-path
// perf trajectory (ns/op, B/op, allocs/op) in a BENCH_PR<n>.json per
// perf round, each joined against the baseline recorded in bench/
// before that round's change.
//
// Usage:
//
//	go test -run '^$' -bench 'Op$' -benchmem ./... > current.txt
//	benchjson -new current.txt -old bench/BASELINE_PR3.txt -out BENCH_PR3.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one benchmark result line, e.g.
// "BenchmarkLearnOp/m=50-8   1992   617543 ns/op   32479 B/op   127 allocs/op".
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// Result is one benchmark measurement, joined with its baseline when the
// baseline run contains the same benchmark name.
type Result struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineBytesPerOp  float64 `json:"baseline_b_per_op,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`
}

type doc struct {
	Note       string   `json:"note"`
	Benchmarks []Result `json:"benchmarks"`
}

func parse(path string) (map[string]Result, []string, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		r = f
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	out := map[string]Result{}
	var order []string
	start := 0
	for pos := 0; pos <= len(raw); pos++ {
		if pos != len(raw) && raw[pos] != '\n' {
			continue
		}
		line := string(raw[start:pos])
		start = pos + 1
		mm := benchLine.FindStringSubmatch(line)
		if mm == nil {
			continue
		}
		iters, _ := strconv.ParseInt(mm[2], 10, 64)
		ns, _ := strconv.ParseFloat(mm[3], 64)
		var bytesOp, allocsOp float64
		if mm[4] != "" {
			bytesOp, _ = strconv.ParseFloat(mm[4], 64)
		}
		if mm[5] != "" {
			allocsOp, _ = strconv.ParseFloat(mm[5], 64)
		}
		if _, dup := out[mm[1]]; !dup {
			order = append(order, mm[1])
		}
		out[mm[1]] = Result{Name: mm[1], Iters: iters, NsPerOp: ns, BytesPerOp: bytesOp, AllocsPerOp: allocsOp}
	}
	return out, order, nil
}

func main() {
	newPath := flag.String("new", "-", "current `go test -bench` output ('-' = stdin)")
	oldPath := flag.String("old", "", "optional baseline `go test -bench` output")
	outPath := flag.String("out", "", "output JSON path (default stdout)")
	note := flag.String("note", "micro-benchmarks of the learner hot paths; speedup = baseline_ns/current_ns", "note embedded in the document")
	flag.Parse()

	cur, order, err := parse(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	base := map[string]Result{}
	if *oldPath != "" {
		if base, _, err = parse(*oldPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
			os.Exit(1)
		}
	}

	d := doc{Note: *note}
	sort.Strings(order)
	for _, name := range order {
		r := cur[name]
		if b, ok := base[name]; ok {
			r.BaselineNsPerOp = b.NsPerOp
			r.BaselineBytesPerOp = b.BytesPerOp
			r.BaselineAllocsPerOp = b.AllocsPerOp
			if r.NsPerOp > 0 {
				r.Speedup = b.NsPerOp / r.NsPerOp
			}
		}
		d.Benchmarks = append(d.Benchmarks, r)
	}

	enc, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
