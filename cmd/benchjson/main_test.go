package main

import (
	"os"
	"path/filepath"
	"testing"
)

func parseString(t *testing.T, text string) map[string]Result {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(p, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := parse(p)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParseStandardLine(t *testing.T) {
	out := parseString(t, "BenchmarkLearnOp/m=50-8   1992   617543 ns/op   32479 B/op   127 allocs/op\n")
	r, ok := out["BenchmarkLearnOp/m=50"]
	if !ok {
		t.Fatalf("parsed names: %v", out)
	}
	if r.Iters != 1992 || r.NsPerOp != 617543 || r.BytesPerOp != 32479 || r.AllocsPerOp != 127 {
		t.Fatalf("parsed %+v", r)
	}
	if len(r.Extra) != 0 {
		t.Fatalf("standard line produced extras: %v", r.Extra)
	}
}

// The server load benchmarks interleave b.ReportMetric custom metrics
// (p50-ns, p99-ns, qps) between ns/op and -benchmem's B/op columns;
// all of them must survive into the document.
func TestParseCustomMetrics(t *testing.T) {
	out := parseString(t,
		"BenchmarkServerPredictOp-8   2935   181199 ns/op   1395445 p50-ns   2126006 p99-ns   5519 qps   2048 B/op   21 allocs/op\n")
	r, ok := out["BenchmarkServerPredictOp"]
	if !ok {
		t.Fatalf("parsed names: %v", out)
	}
	if r.NsPerOp != 181199 || r.BytesPerOp != 2048 || r.AllocsPerOp != 21 {
		t.Fatalf("fixed columns mis-parsed around custom metrics: %+v", r)
	}
	want := map[string]float64{"p50-ns": 1395445, "p99-ns": 2126006, "qps": 5519}
	for k, v := range want {
		if r.Extra[k] != v {
			t.Fatalf("Extra[%q] = %v, want %v (all: %v)", k, r.Extra[k], v, r.Extra)
		}
	}
}

// Non-benchmark lines (headers, PASS/ok trailers) are skipped.
func TestParseSkipsNoise(t *testing.T) {
	out := parseString(t, "goos: linux\ncpu: something\nPASS\nok  \trepro/internal/server\t2.1s\n")
	if len(out) != 0 {
		t.Fatalf("noise parsed as benchmarks: %v", out)
	}
}
