package repro

import (
	"context"

	"repro/internal/eval"
	"repro/internal/stream"
)

// Context-aware evaluation and the concurrent experiment Runner: the
// serving-grade entry points. The context-free Prequential and
// ExperimentSuite.Run remain as thin shims over these.

// PrequentialContext runs test-then-train evaluation under a context: the
// context is checked before every iteration, and a cancelled run returns
// the iterations finished so far together with ctx.Err().
func PrequentialContext(ctx context.Context, c Classifier, s Stream, opts EvalOptions) (EvalResult, error) {
	return eval.PrequentialContext(ctx, c, s, opts)
}

// ContextStream is optionally implemented by streams whose production can
// block; NextContext must honour cancellation.
type ContextStream = stream.ContextStream

// NextWithContext draws one instance honouring cancellation, delegating
// to NextContext when the stream implements ContextStream.
func NextWithContext(ctx context.Context, s Stream) (Instance, error) {
	return stream.NextWithContext(ctx, s)
}

// NextBatch draws up to n instances from s into a fresh batch, returning
// ErrEndOfStream only when nothing at all could be drawn — the building
// block of hand-rolled training loops (see cmd/dmtserve).
func NextBatch(s Stream, n int) (Batch, error) { return stream.NextBatch(s, n) }

// NextBatchContext is NextBatch with cancellation checked before every
// instance; a cancelled context drops the partial batch.
func NextBatchContext(ctx context.Context, s Stream, n int) (Batch, error) {
	return stream.NextBatchContext(ctx, s, n)
}

// Experiment cells and the concurrent Runner.
type (
	// Cell is one self-contained experiment cell (model × stream × seed).
	Cell = eval.Cell
	// Runner fans experiment cells out across worker goroutines; results
	// are byte-identical to a sequential run of the same cells.
	Runner = eval.Runner
)

// CellSeed derives a deterministic, scheduling-independent per-cell seed
// from a base seed and the cell's coordinates.
func CellSeed(base int64, dataset, model string) int64 {
	return eval.CellSeed(base, dataset, model)
}

// RunAblation evaluates the DMT ablation variants (see cmd/dmtbench
// -ablation). progress may be nil.
var RunAblation = eval.RunAblation

// SlidingMean smooths a series with a trailing window (Figure 3).
func SlidingMean(series []float64, window int) []float64 {
	return eval.SlidingMean(series, window)
}

// SlidingStd is the matching trailing-window standard deviation.
func SlidingStd(series []float64, window int) []float64 {
	return eval.SlidingStd(series, window)
}
