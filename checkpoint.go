package repro

import (
	"bytes"
	"io"

	"repro/internal/model"
	"repro/internal/persist"
	"repro/internal/registry"
)

// Unified checkpoint/restore: every registered model — the DMT, all
// baselines, both ensembles — persists through one API. Save wraps the
// learner's complete training state (structure, sufficient statistics,
// drift-detector windows, RNG position) in a versioned self-describing
// envelope: magic bytes, format version, the registered model name, the
// stream schema, the resolved ModelParams and a payload checksum. Load
// reads the envelope and resolves the restore factory from the model
// name in the registry — the caller never names a type, exactly as New
// resolves construction factories from a string.
//
// The round trip is lossless in the strictest sense: a save → load →
// continue run is byte-identical in predictions and complexity to a run
// that never stopped, for every registered model.
//
//	f, _ := os.Create("model.ckpt")
//	err := repro.Save(f, clf)            // any registered model
//	...
//	restored, err := repro.Load(f2)      // type resolved from the envelope
//	restored.Learn(nextBatch)            // continues exactly where clf was
//
// External learners plugged in via Register participate by implementing
// Checkpointer plus a `Schema() Schema` accessor (the envelope embeds
// the schema) and registering a loader with RegisterLoader.

// Checkpointer is implemented by every registered learner: SaveState
// streams the model-private checkpoint payload Save wraps in the
// envelope.
type Checkpointer = model.Checkpointer

// ModelLoader restores a classifier from a checkpoint payload; the
// schema and resolved params come from the envelope.
type ModelLoader = registry.Loader

// Save writes c as a self-describing checkpoint envelope. c must be a
// registered model (or an external learner implementing Checkpointer
// whose name has a RegisterLoader entry), so the checkpoint is
// guaranteed restorable by Load.
func Save(w io.Writer, c Classifier) error { return persist.Save(w, c) }

// Load reconstructs a model from a checkpoint envelope written by Save.
// The registry resolves the model's restore factory from the envelope's
// model name; the caller never names the concrete type. Corrupt,
// truncated or checksum-mismatched envelopes and checkpoints from newer
// format versions are rejected with descriptive errors. For legacy
// pre-envelope DMT gob checkpoints, use LoadDMT.
func Load(r io.Reader) (Classifier, error) { return persist.Load(r) }

// RegisterLoader adds the checkpoint-restore factory of an externally
// registered model — the Load counterpart of Register. Registered
// learners ship with their loaders; this is only needed for external
// models.
func RegisterLoader(name string, l ModelLoader) { registry.RegisterLoader(name, l) }

// Delta checkpoints: beside the full envelope, Save's output can be
// diffed into "REPRODLT" delta envelopes keyed by the models'
// StructureVersions, so a serving replica or a resume transfers only
// what changed. Applying a base plus its delta chain is byte-identical
// to the full save at the head version — per-delta base/result
// checksums enforce it, the version keys reject gaps and reordering.

// Delta is one delta envelope: a verified binary patch between two full
// checkpoint envelopes of the same model.
type Delta = persist.Delta

// DeltaHeader is the self-describing metadata of a Delta.
type DeltaHeader = persist.DeltaHeader

// MakeDelta computes the delta between two full checkpoint envelopes
// given as their verbatim wire bytes (two Save outputs).
func MakeDelta(base, target []byte) (*Delta, error) { return persist.MakeDelta(base, target) }

// SaveDelta computes and writes the delta envelope turning the full
// checkpoint bytes base into target.
func SaveDelta(w io.Writer, base, target []byte) error {
	d, err := persist.MakeDelta(base, target)
	if err != nil {
		return err
	}
	return persist.WriteDelta(w, d)
}

// ReadDelta reads exactly one delta envelope; deltas and full envelopes
// stack on one stream, distinguished by magic.
func ReadDelta(r io.Reader) (*Delta, error) { return persist.ReadDelta(r) }

// ApplyDeltaChain applies a chain of consecutive deltas to a base full
// envelope with strict validation (base pin, per-link checksums, version
// continuity) and returns the reconstructed full envelope bytes —
// byte-identical to the full save at the head version.
func ApplyDeltaChain(base []byte, deltas ...*Delta) ([]byte, error) {
	return persist.ApplyChain(base, deltas...)
}

// LoadDelta reconstructs the head model from a base full envelope plus
// its delta chain — the delta-aware Load.
func LoadDelta(base []byte, deltas ...*Delta) (Classifier, error) {
	head, err := persist.ApplyChain(base, deltas...)
	if err != nil {
		return nil, err
	}
	return persist.Load(bytes.NewReader(head))
}
