package repro

import (
	"io"

	"repro/internal/model"
	"repro/internal/persist"
	"repro/internal/registry"
)

// Unified checkpoint/restore: every registered model — the DMT, all
// baselines, both ensembles — persists through one API. Save wraps the
// learner's complete training state (structure, sufficient statistics,
// drift-detector windows, RNG position) in a versioned self-describing
// envelope: magic bytes, format version, the registered model name, the
// stream schema, the resolved ModelParams and a payload checksum. Load
// reads the envelope and resolves the restore factory from the model
// name in the registry — the caller never names a type, exactly as New
// resolves construction factories from a string.
//
// The round trip is lossless in the strictest sense: a save → load →
// continue run is byte-identical in predictions and complexity to a run
// that never stopped, for every registered model.
//
//	f, _ := os.Create("model.ckpt")
//	err := repro.Save(f, clf)            // any registered model
//	...
//	restored, err := repro.Load(f2)      // type resolved from the envelope
//	restored.Learn(nextBatch)            // continues exactly where clf was
//
// External learners plugged in via Register participate by implementing
// Checkpointer plus a `Schema() Schema` accessor (the envelope embeds
// the schema) and registering a loader with RegisterLoader.

// Checkpointer is implemented by every registered learner: SaveState
// streams the model-private checkpoint payload Save wraps in the
// envelope.
type Checkpointer = model.Checkpointer

// ModelLoader restores a classifier from a checkpoint payload; the
// schema and resolved params come from the envelope.
type ModelLoader = registry.Loader

// Save writes c as a self-describing checkpoint envelope. c must be a
// registered model (or an external learner implementing Checkpointer
// whose name has a RegisterLoader entry), so the checkpoint is
// guaranteed restorable by Load.
func Save(w io.Writer, c Classifier) error { return persist.Save(w, c) }

// Load reconstructs a model from a checkpoint envelope written by Save.
// The registry resolves the model's restore factory from the envelope's
// model name; the caller never names the concrete type. Corrupt,
// truncated or checksum-mismatched envelopes and checkpoints from newer
// format versions are rejected with descriptive errors. For legacy
// pre-envelope DMT gob checkpoints, use LoadDMT.
func Load(r io.Reader) (Classifier, error) { return persist.Load(r) }

// RegisterLoader adds the checkpoint-restore factory of an externally
// registered model — the Load counterpart of Register. Registered
// learners ship with their loaders; this is only needed for external
// models.
func RegisterLoader(name string, l ModelLoader) { registry.RegisterLoader(name, l) }
