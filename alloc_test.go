package repro

import (
	"testing"
)

// Serving-path allocation regression: a Scorer wrapping a warmed DMT must
// answer Predict and Proba (with a caller-supplied out buffer) without
// allocating, and steady-state Learn through the public API must stay at
// zero allocations too — the candidate index and the per-tree scratch
// arena absorb all per-batch working memory.
func TestScorerServingZeroAllocs(t *testing.T) {
	batches := linearBenchBatches(8, 16, 100, 9)
	tree := NewDMT(DMTConfig{Seed: 4}, Schema{NumFeatures: 8, NumClasses: 2, Name: "alloc"})
	for _, b := range batches {
		tree.Learn(b)
	}
	if tree.Complexity().Inner != 0 {
		t.Skip("tree split during warm-up; steady state not reachable with this data")
	}
	s := NewScorer(tree)
	x := batches[0].X[0]
	out := make([]float64, 2)
	s.Predict(x)
	s.Proba(x, out)

	if avg := testing.AllocsPerRun(200, func() { s.Predict(x) }); avg != 0 {
		t.Fatalf("Scorer.Predict allocates %.2f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { s.Proba(x, out) }); avg != 0 {
		t.Fatalf("Scorer.Proba allocates %.2f allocs/op, want 0", avg)
	}
	i := 0
	if avg := testing.AllocsPerRun(200, func() {
		s.Learn(batches[i&15])
		i++
	}); avg != 0 {
		t.Fatalf("steady-state Scorer.Learn allocates %.2f allocs/op, want 0", avg)
	}
}
