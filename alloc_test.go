package repro

import (
	"testing"
)

// Serving-path allocation regression: a Scorer wrapping a warmed DMT must
// answer Predict and Proba (with a caller-supplied out buffer) without
// allocating, and steady-state Learn through the public API must stay at
// zero allocations too — the candidate index and the per-tree scratch
// arena absorb all per-batch working memory.
func TestScorerServingZeroAllocs(t *testing.T) {
	batches := linearBenchBatches(8, 16, 100, 9)
	tree := NewDMT(DMTConfig{Seed: 4}, Schema{NumFeatures: 8, NumClasses: 2, Name: "alloc"})
	for _, b := range batches {
		tree.Learn(b)
	}
	if tree.Complexity().Inner != 0 {
		t.Skip("tree split during warm-up; steady state not reachable with this data")
	}
	s := NewScorer(tree)
	x := batches[0].X[0]
	out := make([]float64, 2)
	s.Predict(x)
	s.Proba(x, out)

	if avg := testing.AllocsPerRun(200, func() { s.Predict(x) }); avg != 0 {
		t.Fatalf("Scorer.Predict allocates %.2f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { s.Proba(x, out) }); avg != 0 {
		t.Fatalf("Scorer.Proba allocates %.2f allocs/op, want 0", avg)
	}
	i := 0
	if avg := testing.AllocsPerRun(200, func() {
		s.Learn(batches[i&15])
		i++
	}); avg != 0 {
		t.Fatalf("steady-state Scorer.Learn allocates %.2f allocs/op, want 0", avg)
	}
}

// The wait-free serving reads of the snapshot scorer must not allocate
// either: Predict, Proba with an out buffer, and PredictBatch into a
// preallocated slice all read the published snapshot without garbage.
// (Learn is excluded: publishing clones a snapshot by design — amortise
// with WithPublishEvery.)
func TestSnapshotScorerServingZeroAllocs(t *testing.T) {
	batches := linearBenchBatches(8, 16, 100, 9)
	s := MustServe("DMT", Schema{NumFeatures: 8, NumClasses: 2, Name: "alloc"},
		WithServeModelOptions(WithSeed(4)))
	for _, b := range batches {
		s.Learn(b)
	}
	x := batches[0].X[0]
	out := make([]float64, 2)
	preds := make([]int, 100)
	if avg := testing.AllocsPerRun(200, func() { s.Predict(x) }); avg != 0 {
		t.Fatalf("SnapshotScorer.Predict allocates %.2f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { s.Proba(x, out) }); avg != 0 {
		t.Fatalf("SnapshotScorer.Proba allocates %.2f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { preds = s.PredictBatch(batches[0].X, preds) }); avg != 0 {
		t.Fatalf("SnapshotScorer.PredictBatch allocates %.2f allocs/op, want 0", avg)
	}
}

// FIMT-DD steady-state learning through the public API must allocate
// nothing: the routing path buffer, E-BST updates on indexed keys and
// the RowStep leaf update all reuse per-tree state.
func TestFIMTDDLearnZeroAllocs(t *testing.T) {
	tree := NewFIMTDD(FIMTDDConfig{Seed: 5}, Schema{NumFeatures: 4, NumClasses: 2, Name: "alloc"})
	// Single-class batches over a fixed row set: the E-BST keys exist
	// after warm-up and the zero target deviation keeps split scans out
	// of the measured region.
	X := [][]float64{{0.1, 0.2, 0.3, 0.4}, {0.5, 0.6, 0.7, 0.8}, {0.9, 0.1, 0.4, 0.2}}
	b := Batch{X: X, Y: []int{0, 0, 0}}
	for i := 0; i < 200; i++ {
		tree.Learn(b)
	}
	if avg := testing.AllocsPerRun(300, func() { tree.Learn(b) }); avg != 0 {
		t.Fatalf("steady-state FIMT-DD Learn allocates %.2f allocs/op, want 0", avg)
	}
}

// Categorical learn and predict must match the numeric path's zero-alloc
// steady state: the categorical candidate buckets, the observer counts
// and the subset-scan buffers all live in preallocated arenas.
func TestDMTCategoricalZeroAllocs(t *testing.T) {
	schema := Schema{
		NumFeatures: 4, NumClasses: 2, Name: "cat-alloc",
		Kinds: []FeatureKind{
			NumericKind(), NumericKind(), CategoricalKind(6), CategoricalKind(3),
		},
	}
	// Single-class batches: candidates update (including the categorical
	// exact-match buckets) but no informative split exists, so the
	// structure stays put and the measurement sees the steady state.
	X := make([][]float64, 32)
	Y := make([]int, 32)
	for i := range X {
		X[i] = []float64{float64(i) / 32, float64(31-i) / 32, float64(i % 6), float64(i % 3)}
	}
	b := Batch{X: X, Y: Y}
	tree := NewDMT(DMTConfig{Seed: 4}, schema)
	for i := 0; i < 100; i++ {
		tree.Learn(b)
	}
	if tree.Complexity().Inner != 0 {
		t.Skip("tree split during warm-up; steady state not reachable with this data")
	}
	if avg := testing.AllocsPerRun(300, func() { tree.Learn(b) }); avg != 0 {
		t.Fatalf("categorical DMT Learn allocates %.2f allocs/op, want 0", avg)
	}
	x := X[7]
	if avg := testing.AllocsPerRun(300, func() { tree.Predict(x) }); avg != 0 {
		t.Fatalf("categorical DMT Predict allocates %.2f allocs/op, want 0", avg)
	}
}

// The Hoeffding tree's categorical observers must not allocate in the
// steady state either.
func TestVFDTCategoricalZeroAllocs(t *testing.T) {
	schema := Schema{
		NumFeatures: 3, NumClasses: 2, Name: "cat-alloc",
		Kinds: []FeatureKind{NumericKind(), NumericKind(), CategoricalKind(8)},
	}
	X := make([][]float64, 32)
	Y := make([]int, 32)
	for i := range X {
		X[i] = []float64{float64(i) / 32, float64(31-i) / 32, float64(i % 8)}
	}
	b := Batch{X: X, Y: Y}
	tree := NewVFDT(VFDTConfig{Seed: 4}, schema)
	for i := 0; i < 100; i++ {
		tree.Learn(b)
	}
	if avg := testing.AllocsPerRun(300, func() { tree.Learn(b) }); avg != 0 {
		t.Fatalf("categorical VFDT Learn allocates %.2f allocs/op, want 0", avg)
	}
	x := X[5]
	if avg := testing.AllocsPerRun(300, func() { tree.Predict(x) }); avg != 0 {
		t.Fatalf("categorical VFDT Predict allocates %.2f allocs/op, want 0", avg)
	}
}
