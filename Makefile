# CI entry points. `make ci` is the gate: vet + build + tests + a short
# race pass over the concurrency-sensitive paths (Scorer, Runner,
# registry).

GO ?= go

.PHONY: all ci vet build test race bench fmt

all: ci

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

fmt:
	gofmt -l .
