# CI entry points. `make ci` is the gate: vet + build + tests + a short
# race pass over the concurrency-sensitive paths (Scorer, Runner,
# registry).
#
# `make bench` runs the Benchmark*Op hot-path micro-benchmarks with
# -benchmem and writes BENCH_PR10.json (ns/op, B/op, allocs/op and
# custom metrics — the server load benchmarks report p50-ns/p99-ns/qps,
# the depth-sweep checkpoint benchmarks report ckpt-bytes/delta-bytes —
# per benchmark, joined with the baseline recorded before the PR-10
# model-racing work in bench/BASELINE_PR10.txt, plus the BENCH_PR2..PR9
# history as a cross-PR trend table), so the perf trajectory is tracked
# PR over PR.
# `make bench-all` additionally replays the full table/figure
# reproduction benchmarks.
# `make serve-smoke` runs the dmtserve self-test: an in-process
# prediction server under live training, a few hundred requests across
# both endpoints with one hot model swap mid-traffic, zero tolerated
# errors.
# `make chaos-smoke` runs the fault-tolerance self-test: a replica
# follows an in-process trainer through ~35% seeded injected faults
# (drops, resets, 5xx/429, truncated envelopes) and must converge to
# the trainer's final envelope version while a prediction hammer on the
# replica tolerates zero errors. The follower is delta-seeded, so the
# run also exercises ?since= delta chains (and their full-envelope
# fallback) under fault injection.
# `make race-smoke` runs the model-racing self-test: a three-arm race
# trainer (race:glm,vfdt,nb) learns a recurring-drift stream under a
# prediction hammer; the leader must change at least once, /statusz must
# carry the per-arm scoreboard, and zero requests may fail.

GO ?= go
BENCH_TXT ?= /tmp/repro_bench_current.txt
BENCHTIME ?= 1s
CHAOS_SPEC ?= drop@0.15,reset@0.05,status=503@0.05,status=429@0.02,truncate=512@0.1
CHAOS_SEED ?= 7

.PHONY: all ci vet build test race bench bench-all serve-smoke chaos-smoke race-smoke fmt

all: ci

ci: vet build test race serve-smoke chaos-smoke race-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run '^$$' -bench 'Op$$' -benchmem -benchtime $(BENCHTIME) ./... > $(BENCH_TXT)
	@cat $(BENCH_TXT)
	$(GO) run ./cmd/benchjson -new $(BENCH_TXT) -old bench/BASELINE_PR10.txt \
		-history BENCH_PR2.json,BENCH_PR3.json,BENCH_PR4.json,BENCH_PR5.json,BENCH_PR6.json,BENCH_PR8.json,BENCH_PR9.json -out BENCH_PR10.json
	@echo "wrote BENCH_PR10.json"

bench-all:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

serve-smoke:
	$(GO) run ./cmd/dmtserve -smoke

chaos-smoke:
	$(GO) run ./cmd/dmtserve -smoke -chaos '$(CHAOS_SPEC)' -chaos-seed $(CHAOS_SEED)

race-smoke:
	$(GO) run ./cmd/dmtserve -smoke -model 'race:glm,vfdt,nb'

fmt:
	gofmt -l .
