package repro

import (
	"repro/internal/hoeffding"
	"repro/internal/registry"
)

// Serving-oriented construction: every learner package self-registers a
// factory in the model registry, and New builds any of them by name with
// functional options — callers never touch the per-model config structs.
//
//	dmt, err := repro.New("DMT", schema, repro.WithSeed(42))
//	vfdt, err := repro.New("VFDT", schema, repro.WithLeafMode(repro.LeafNaiveBayesAdaptive))
type (
	// Option is a functional model option (see the With... constructors).
	Option = registry.Option
	// ModelParams is the flattened hyperparameter bag options write into;
	// custom factories registered via Register receive it resolved.
	ModelParams = registry.Params
	// ModelFactory builds a classifier from a schema and resolved params.
	ModelFactory = registry.Factory
)

// New builds a registered model by name. The paper's eight table names
// ("DMT", "FIMT-DD", "VFDT (MC)", "VFDT (NBA)", "HT-Ada", "EFDT",
// "Forest Ens.", "Bagging Ens.") are always available, plus the extra
// baselines "VFDT", "VFDT (NB)", "GLM" and "Naive Bayes". Zero options
// reproduce the paper's Section VI-C configuration.
func New(name string, schema Schema, opts ...Option) (Classifier, error) {
	return registry.New(name, schema, opts...)
}

// MustNew is New for initialisation paths where a failure is fatal.
func MustNew(name string, schema Schema, opts ...Option) Classifier {
	return registry.MustNew(name, schema, opts...)
}

// Register adds a model factory under a new name; it panics on duplicate
// names (a process-start programmer error). Use it to plug external
// learners into the evaluation harness and the serving API.
func Register(name string, f ModelFactory) { registry.Register(name, f) }

// Models returns every registered model name, sorted.
func Models() []string { return registry.Names() }

// ModelRegistered reports whether a model name is known.
func ModelRegistered(name string) bool { return registry.Registered(name) }

// VFDTLeafMode selects the VFDT leaf predictor (see the Leaf... consts).
type VFDTLeafMode = hoeffding.LeafMode

// Functional options. Zero / unset values always mean "the package
// default", which is the paper's configuration.

// WithSeed fixes every source of randomness of the model.
func WithSeed(seed int64) Option { return registry.WithSeed(seed) }

// WithLearningRate sets the SGD rate of GLM-based models (DMT, FIMT-DD,
// the GLM baseline).
func WithLearningRate(lr float64) Option { return registry.WithLearningRate(lr) }

// WithEpsilon sets the DMT's AIC confidence level (eq. 11).
func WithEpsilon(eps float64) Option { return registry.WithEpsilon(eps) }

// WithCandidateFactor caps DMT split candidates at factor*NumFeatures.
func WithCandidateFactor(f int) Option { return registry.WithCandidateFactor(f) }

// WithReplacementRate sets the DMT candidate-pool churn rate.
func WithReplacementRate(r float64) Option { return registry.WithReplacementRate(r) }

// WithRestructureGrace sets the DMT inner-node restructure grace weight.
func WithRestructureGrace(g float64) Option { return registry.WithRestructureGrace(g) }

// WithL1 enables the DMT/GLM sparsity extension with the given strength.
func WithL1(l1 float64) Option { return registry.WithL1(l1) }

// WithMaxDepth bounds tree growth (0 = unbounded).
func WithMaxDepth(d int) Option { return registry.WithMaxDepth(d) }

// WithGracePeriod sets the Hoeffding-family split-attempt grace weight.
func WithGracePeriod(g float64) Option { return registry.WithGracePeriod(g) }

// WithDelta sets the Hoeffding bound confidence.
func WithDelta(d float64) Option { return registry.WithDelta(d) }

// WithTau sets the Hoeffding tie-break threshold.
func WithTau(t float64) Option { return registry.WithTau(t) }

// WithBins sets the candidate thresholds per numeric observer.
func WithBins(b int) Option { return registry.WithBins(b) }

// WithLeafMode selects the leaf predictor of the generic "VFDT" model.
func WithLeafMode(m VFDTLeafMode) Option {
	return registry.WithLeafMode(registry.LeafMode(m))
}

// WithADWINDelta sets the HT-Ada per-node monitor confidence.
func WithADWINDelta(d float64) Option { return registry.WithADWINDelta(d) }

// WithReevalPeriod sets the EFDT split re-evaluation weight.
func WithReevalPeriod(w float64) Option { return registry.WithReevalPeriod(w) }

// WithEnsembleSize sets the number of ensemble members.
func WithEnsembleSize(n int) Option { return registry.WithEnsembleSize(n) }

// WithLambda sets the ensembles' Poisson weighting intensity.
func WithLambda(l float64) Option { return registry.WithLambda(l) }

// WithEnsembleDeltas sets the ensembles' warning and drift ADWIN
// confidences (zero keeps the respective package default).
func WithEnsembleDeltas(warn, drift float64) Option {
	return registry.WithEnsembleDeltas(warn, drift)
}

// WithEnsembleWorkers bounds the ensembles' member-learning worker pool
// (0 = GOMAXPROCS, 1 = sequential; results are identical either way).
func WithEnsembleWorkers(n int) Option { return registry.WithEnsembleWorkers(n) }

// WithPageHinkley sets FIMT-DD's Page-Hinkley detector parameters.
func WithPageHinkley(delta, lambda float64) Option {
	return registry.WithPageHinkley(delta, lambda)
}
