package repro

import (
	"context"
	"io"
	"net/http"
	"time"

	"repro/internal/serve"
	"repro/internal/server"
)

// The network serving tier: an HTTP prediction service over any Scorer,
// plus the trainer→replica envelope-streaming protocol. See
// internal/server for the endpoint contract; cmd/dmtserve is the
// ready-made binary, examples/serving the two-process demo.
type (
	// PredictionServer serves /v1/predict, /v1/predict_batch, /v1/swap,
	// /v1/envelope, /healthz and /statusz for one Scorer, coalescing
	// concurrent single-row requests into batch predictions and shedding
	// load beyond its in-flight bound with 429 + Retry-After.
	PredictionServer = server.Server
	// ServerConfig tunes coalescing (window, max batch), admission
	// control (max in-flight, retry hint) and body/long-poll limits. The
	// zero value is production-sane.
	ServerConfig = server.Config
	// ServerStatus is the /statusz document.
	ServerStatus = server.Status
	// FollowConfig tunes a replica's envelope-follow loop (poll
	// interval, long-poll duration).
	FollowConfig = server.FollowConfig
)

// NewPredictionServer wraps a Scorer in an HTTP prediction service. The
// returned server exposes Handler() for mounting into any mux; callers
// own the http.Server. Close it when retiring the scorer.
func NewPredictionServer(s Scorer, cfg ServerConfig) *PredictionServer {
	return server.New(s, cfg)
}

// ListenAndServe serves prediction traffic for s on addr until the
// context is cancelled, then drains with a graceful shutdown. The
// scorer may keep learning concurrently; /v1/swap and the envelope
// endpoint make the process a drop-in trainer for replica fleets.
func ListenAndServe(ctx context.Context, addr string, s Scorer, cfg ServerConfig) error {
	ps := NewPredictionServer(s, cfg)
	defer ps.Close()
	hs := &http.Server{Addr: addr, Handler: ps.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
		return ctx.Err()
	}
}

// Follow runs a replica's pull loop against a trainer's /v1/envelope
// endpoint until ctx is cancelled: whenever the trainer's structure
// version moves past the last installed one, the new envelope is
// streamed into s via Restore — reads served from s never fail during
// an install.
func Follow(ctx context.Context, trainerURL string, s Scorer, cfg FollowConfig) error {
	return server.Follow(ctx, trainerURL, s, cfg)
}

// BootstrapScorer fetches the trainer's current envelope once and
// builds a local Scorer from it — how a stateless replica starts with
// no model of its own. Sharded checkpoints reconstruct a sharded
// scorer; publishEvery sets the snapshot publish cadence of the
// reconstructed scorer(s).
func BootstrapScorer(ctx context.Context, trainerURL string, publishEvery int) (Scorer, uint64, error) {
	return server.Bootstrap(ctx, nil, trainerURL, publishEvery)
}

// ScorerFromCheckpoint reconstructs a Scorer from checkpoint bytes
// written by any Scorer's Checkpoint — the single envelope of a locked
// or snapshot scorer, or the counted per-shard sequence of a sharded
// one.
func ScorerFromCheckpoint(r io.Reader, publishEvery int) (Scorer, error) {
	return serve.FromCheckpoint(r, publishEvery)
}
