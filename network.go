package repro

import (
	"context"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/faults"
	"repro/internal/serve"
	"repro/internal/server"
)

// The network serving tier: an HTTP prediction service over any Scorer,
// plus the trainer→replica envelope-streaming protocol. See
// internal/server for the endpoint contract; cmd/dmtserve is the
// ready-made binary, examples/serving the two-process demo.
type (
	// PredictionServer serves /v1/predict, /v1/predict_batch, /v1/swap,
	// /v1/envelope, /healthz and /statusz for one Scorer, coalescing
	// concurrent single-row requests into batch predictions and shedding
	// load beyond its in-flight bound with 429 + Retry-After.
	PredictionServer = server.Server
	// ServerConfig tunes coalescing (window, max batch), admission
	// control (max in-flight, retry hint) and body/long-poll limits. The
	// zero value is production-sane.
	ServerConfig = server.Config
	// ServerStatus is the /statusz document.
	ServerStatus = server.Status
	// FollowConfig tunes a replica's envelope-follow loop: poll
	// interval, long-poll duration, retry backoff, circuit breaker,
	// drain hooks and failure callbacks.
	FollowConfig = server.FollowConfig
	// Follower is the resilient replica pull loop behind Follow:
	// exponential backoff with full jitter, Retry-After-aware 429/503
	// handling, a circuit breaker against a down trainer, and per-cause
	// error counters (FollowStats). It implements StalenessSource.
	Follower = server.Follower
	// FollowStats snapshots a Follower's lifetime counters.
	FollowStats = server.FollowStats
	// FetchError classifies one envelope-fetch failure (dial, timeout,
	// status, decode, restore) and carries any Retry-After hint.
	FetchError = server.FetchError
	// FollowCause is the failure class of a FetchError.
	FollowCause = server.Cause
	// BreakerState is a circuit breaker's state (closed, open,
	// half-open).
	BreakerState = server.BreakerState
	// ServerHealth is the /healthz document: live / ready / degraded
	// plus the staleness lag of a degraded replica.
	ServerHealth = server.Health
	// StalenessSource feeds a PredictionServer its degradation verdict
	// (a Follower is one; see PredictionServer.SetStalenessSource).
	StalenessSource = server.StalenessSource
	// RegistryConfig tunes the trainer-side replica registry (heartbeat
	// TTL, envelope-version lag gate).
	RegistryConfig = server.RegistryConfig
	// ReplicaInfo is one registry entry with its health verdict.
	ReplicaInfo = server.ReplicaInfo
	// ReplicaAnnounce is the heartbeat body a replica POSTs to the
	// trainer's /v1/replicas.
	ReplicaAnnounce = server.ReplicaAnnounce
	// ReplicaList is the GET /v1/replicas document.
	ReplicaList = server.ReplicaList
	// ReplicaSet is the client-side picker over a trainer's registry:
	// round-robin across health-gated replicas with a per-replica
	// circuit breaker (eject on consecutive failures, readmit on a
	// successful half-open probe).
	ReplicaSet = server.ReplicaSet
	// ReplicaSetConfig tunes a ReplicaSet.
	ReplicaSetConfig = server.ReplicaSetConfig
	// FaultInjector injects deterministic, seedable faults into HTTP
	// round trips and listeners — the chaos harness behind `dmtserve
	// -chaos` and the chaos test suite.
	FaultInjector = faults.Injector
	// FaultRule is one fault class with its probability, schedule
	// window and parameters.
	FaultRule = faults.Rule
	// FaultKind is the fault class of a FaultRule.
	FaultKind = faults.Kind
)

// Fault classes for FaultRule.
const (
	FaultDrop     = faults.Drop
	FaultReset    = faults.Reset
	FaultDelay    = faults.Delay
	FaultStatus   = faults.Status
	FaultTruncate = faults.Truncate
)

// Circuit-breaker states, re-exported for callers observing
// OnStateChange transitions.
const (
	BreakerClosed   = server.BreakerClosed
	BreakerOpen     = server.BreakerOpen
	BreakerHalfOpen = server.BreakerHalfOpen
)

// NewPredictionServer wraps a Scorer in an HTTP prediction service. The
// returned server exposes Handler() for mounting into any mux; callers
// own the http.Server. Close it when retiring the scorer.
func NewPredictionServer(s Scorer, cfg ServerConfig) *PredictionServer {
	return server.New(s, cfg)
}

// ListenAndServe serves prediction traffic for s on addr until the
// context is cancelled, then drains with a graceful shutdown. The
// scorer may keep learning concurrently; /v1/swap and the envelope
// endpoint make the process a drop-in trainer for replica fleets.
func ListenAndServe(ctx context.Context, addr string, s Scorer, cfg ServerConfig) error {
	ps := NewPredictionServer(s, cfg)
	defer ps.Close()
	return ServePrediction(ctx, addr, ps, nil)
}

// ServePrediction serves an already-built PredictionServer on addr
// until ctx is cancelled, then drains with a graceful shutdown. A
// non-nil ln overrides addr with a prepared listener — the hook for
// wrapping the accept path in a FaultInjector's Listener. The caller
// keeps ownership of ps (wire up SetStalenessSource, Registry, or a
// Follower's Drainer before serving); ps is closed on the way out so
// parked long-polls release promptly and pending predictions fail fast
// with 503 instead of hanging into the shutdown deadline.
func ServePrediction(ctx context.Context, addr string, ps *PredictionServer, ln net.Listener) error {
	hs := &http.Server{Addr: addr, Handler: ps.Handler()}
	errc := make(chan error, 1)
	go func() {
		if ln != nil {
			errc <- hs.Serve(ln)
		} else {
			errc <- hs.ListenAndServe()
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		ps.Close()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
		return ctx.Err()
	}
}

// Follow runs a replica's pull loop against a trainer's /v1/envelope
// endpoint until ctx is cancelled: whenever the trainer's structure
// version moves past the last installed one, the new envelope is
// streamed into s via Restore — reads served from s never fail during
// an install.
func Follow(ctx context.Context, trainerURL string, s Scorer, cfg FollowConfig) error {
	return server.Follow(ctx, trainerURL, s, cfg)
}

// NewFollower builds the resilient pull loop behind Follow as a handle:
// start it with Run, observe it through Stats/State/Staleness, and feed
// it to PredictionServer.SetStalenessSource so degraded responses are
// stamped with their lag.
func NewFollower(trainerURL string, s Scorer, cfg FollowConfig) *Follower {
	return server.NewFollower(trainerURL, s, cfg)
}

// NewReplicaSet builds a client-side picker over the trainer's replica
// registry. Start Run (or call Refresh) before the first Pick; Report
// each request's outcome to drive the per-replica breakers.
func NewReplicaSet(trainerURL string, cfg ReplicaSetConfig) *ReplicaSet {
	return server.NewReplicaSet(trainerURL, cfg)
}

// RunHeartbeats announces state() to the trainer's registry every
// interval until ctx is cancelled, then deregisters with one leaving
// announce. A nil client gets a sane default.
func RunHeartbeats(ctx context.Context, client *http.Client, trainerURL string, interval time.Duration, state func() ReplicaAnnounce) {
	server.RunHeartbeats(ctx, client, trainerURL, interval, state)
}

// NewFaultInjector builds a deterministic fault injector: the same seed
// and traffic order replay the same fault sequence. Wrap a transport
// with RoundTripper or an accept path with Listener.
func NewFaultInjector(seed int64, rules ...FaultRule) *FaultInjector {
	return faults.New(seed, rules...)
}

// ParseFaults parses a chaos spec like
// "drop@0.2,reset@0.1,delay=50ms@0.3,status=503@0.1,truncate=256@0.1"
// into fault rules (the `dmtserve -chaos` grammar).
func ParseFaults(spec string) ([]FaultRule, error) {
	return faults.Parse(spec)
}

// BootstrapScorer fetches the trainer's current envelope once and
// builds a local Scorer from it — how a stateless replica starts with
// no model of its own. Sharded checkpoints reconstruct a sharded
// scorer; publishEvery sets the snapshot publish cadence of the
// reconstructed scorer(s).
func BootstrapScorer(ctx context.Context, trainerURL string, publishEvery int) (Scorer, uint64, error) {
	return server.Bootstrap(ctx, nil, trainerURL, publishEvery)
}

// BootstrapScorerWith is BootstrapScorer through a caller-owned
// http.Client — the hook for custom timeouts or a fault-injecting
// transport.
func BootstrapScorerWith(ctx context.Context, client *http.Client, trainerURL string, publishEvery int) (Scorer, uint64, error) {
	return server.Bootstrap(ctx, client, trainerURL, publishEvery)
}

// BootstrapScorerRaw is BootstrapScorerWith returning the fetched
// envelope bytes alongside the Scorer — seed them into a Follower with
// SeedInstalled so its very first poll can negotiate delta chains
// (GET /v1/envelope?since=V) instead of refetching full envelopes.
func BootstrapScorerRaw(ctx context.Context, client *http.Client, trainerURL string, publishEvery int) (Scorer, uint64, []byte, error) {
	return server.BootstrapRaw(ctx, client, trainerURL, publishEvery)
}

// ScorerFromCheckpoint reconstructs a Scorer from checkpoint bytes
// written by any Scorer's Checkpoint — the single envelope of a locked
// or snapshot scorer, or the counted per-shard sequence of a sharded
// one.
func ScorerFromCheckpoint(r io.Reader, publishEvery int) (Scorer, error) {
	return serve.FromCheckpoint(r, publishEvery)
}
