package repro

// Integration tests across modules: full prequential runs of every model
// on small streams, with the paper's qualitative claims as assertions —
// every model learns, the DMT stays far shallower than the Hoeffding
// family at comparable quality, and the DMT recovers from abrupt drift.

import (
	"testing"
)

// runSEA evaluates one model on a fixed SEA stream and returns its result.
func runSEA(t *testing.T, name string, samples int) EvalResult {
	t.Helper()
	gen := NewSEA(samples, 0.1, 42)
	clf, err := NewClassifierByName(name, gen.Schema(), 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Prequential(clf, gen, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Every model must clear a sanity bar on SEA (random F1 under 10% noise
// and ~36/64 class balance sits near 0.45; majority-vote F1 is 0).
func TestIntegrationAllModelsLearnSEA(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, name := range []string{
		"DMT", "FIMT-DD", "VFDT (MC)", "VFDT (NBA)", "HT-Ada", "EFDT",
		"Forest Ens.", "Bagging Ens.",
	} {
		res := runSEA(t, name, 30_000)
		f1, _ := res.F1()
		if f1 < 0.5 {
			t.Errorf("%s: F1 %.3f on SEA 30k — below the sanity bar", name, f1)
		}
	}
}

// The headline complexity claim (Tables III, Figure 3): at comparable F1,
// the DMT needs a small fraction of the Hoeffding trees' splits.
func TestIntegrationDMTStaysShallow(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dmt := runSEA(t, "DMT", 60_000)
	vfdt := runSEA(t, "VFDT (MC)", 60_000)

	dmtF1, _ := dmt.F1()
	vfdtF1, _ := vfdt.F1()
	dmtSplits, _ := dmt.Splits()
	vfdtSplits, _ := vfdt.Splits()

	if dmtF1 < vfdtF1-0.05 {
		t.Errorf("DMT F1 %.3f should be at least comparable to VFDT %.3f", dmtF1, vfdtF1)
	}
	if dmtSplits >= vfdtSplits/2 {
		t.Errorf("DMT splits %.1f should be far below VFDT's %.1f", dmtSplits, vfdtSplits)
	}
}

// Figure 3's drift story on the second SEA drift: the DMT's post-drift
// dip must be bounded and it must recover.
func TestIntegrationDMTDriftRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	res := runSEA(t, "DMT", 100_000)
	f1 := res.Series(func(s IterStats) float64 { return s.F1 })
	iters := len(f1)
	drift := 2 * iters / 5 // second abrupt drift
	w := 30

	mean := func(lo, hi int) float64 {
		var s float64
		for _, v := range f1[lo:hi] {
			s += v
		}
		return s / float64(hi-lo)
	}
	before := mean(drift-w, drift)
	recovered := mean(drift+3*w, drift+6*w)
	if recovered < before-0.12 {
		t.Errorf("DMT did not recover from the drift: before %.3f, after %.3f", before, recovered)
	}
}

// NBA leaves must beat MC leaves on the Gaussian-cluster surrogates (the
// paper's Gas discussion, Section VI-E1).
func TestIntegrationNBABeatsMCOnGas(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	entry, err := DatasetByName("Gas")
	if err != nil {
		t.Fatal(err)
	}
	run := func(name string) float64 {
		strm := entry.New(0.3, 42)
		clf, err := NewClassifierByName(name, strm.Schema(), 42)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Prequential(clf, strm, EvalOptions{MinBatchSize: 32})
		if err != nil {
			t.Fatal(err)
		}
		f1, _ := res.F1()
		return f1
	}
	nba := run("VFDT (NBA)")
	mc := run("VFDT (MC)")
	if nba <= mc {
		t.Errorf("NBA %.3f should beat MC %.3f on Gas*", nba, mc)
	}
}

// The DMT must handle a multiclass Table I surrogate end to end.
func TestIntegrationDMTMulticlass(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	entry, err := DatasetByName("Insects-Abr.")
	if err != nil {
		t.Fatal(err)
	}
	strm := entry.New(0.05, 42)
	dmt := NewDMT(DMTConfig{Seed: 42}, strm.Schema())
	res, err := Prequential(dmt, strm, EvalOptions{MinBatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := res.F1()
	if f1 < 0.4 {
		t.Errorf("DMT macro F1 %.3f on Insects-Abr.*", f1)
	}
}
