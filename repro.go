// Package repro is the public API of this reproduction of "Dynamic Model
// Tree for Interpretable Data Stream Learning" (Haug, Broelemann, Kasneci;
// ICDE 2022). It exposes the Dynamic Model Tree, every baseline of the
// paper's evaluation, the stream generators and surrogate data sets of
// Table I, and the prequential evaluation harness that regenerates the
// paper's tables and figures.
//
// Quickstart (registry + functional options, the serving API):
//
//	gen := repro.NewSEA(100_000, 0.1, 42)
//	dmt, err := repro.New("DMT", gen.Schema(), repro.WithSeed(42))
//	if err != nil { ... }
//	res, err := repro.PrequentialContext(ctx, dmt, gen, repro.EvalOptions{})
//	if err != nil { ... }
//	f1, _ := res.F1()
//
// Every learner package self-registers in the model registry, so New
// builds any of the paper's eight models (plus the extra baselines) by
// table name; functional options (WithSeed, WithLearningRate, ...) replace
// direct config-struct wiring. Register plugs external learners into the
// same registry. For serving reads during learning, use Serve (lock-free
// snapshot scorer with batch prediction; NewScorer remains the RWMutex
// wrapper); for fanning whole experiment grids across cores, use the
// Runner (or ExperimentSuite with Parallel > 1). Save and Load
// checkpoint any registered model through a self-describing envelope —
// a save → load → continue run is byte-identical to never stopping —
// and the Runner resumes interrupted grids from per-cell checkpoints.
//
// The typed constructors below (NewDMT, NewVFDT, ...) remain for callers
// that want compile-time configs and the concrete tree types.
//
// See examples/ for runnable programs and cmd/dmtbench for the full
// experiment suite.
package repro

import (
	"io"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/efdt"
	"repro/internal/ensemble"
	"repro/internal/eval"
	"repro/internal/fimtdd"
	"repro/internal/hatada"
	"repro/internal/hoeffding"
	"repro/internal/model"
	"repro/internal/stream"
	"repro/internal/synth"
)

// Data model aliases.
type (
	// Schema describes a classification stream (features, classes, name).
	Schema = stream.Schema
	// FeatureKind declares one feature column as numeric or categorical
	// (with a cardinality and optional level names) on Schema.Kinds.
	FeatureKind = stream.FeatureKind
	// Instance is one labelled observation.
	Instance = stream.Instance
	// Batch is a row-major mini-batch.
	Batch = stream.Batch
	// Stream produces labelled instances; all generators implement it.
	Stream = stream.Stream
	// Classifier is the batch-incremental online classifier contract.
	Classifier = model.Classifier
	// ProbabilisticClassifier is implemented by models exposing class
	// probabilities.
	ProbabilisticClassifier = model.ProbabilisticClassifier
	// Complexity is the paper's split/parameter accounting (Section VI-D2).
	Complexity = model.Complexity
)

// ErrEndOfStream signals stream exhaustion from Stream.Next.
var ErrEndOfStream = stream.ErrEnd

// NumericKind declares a numeric feature column (the default).
func NumericKind() FeatureKind { return stream.Numeric() }

// CategoricalKind declares a categorical feature column whose values are
// integer level codes in [0, cardinality).
func CategoricalKind(cardinality int) FeatureKind { return stream.Categorical(cardinality) }

// CategoricalKindLevels declares a categorical feature column with named
// levels; the cardinality is the level count and code i means levels[i].
func CategoricalKindLevels(levels ...string) FeatureKind {
	return stream.CategoricalLevels(levels...)
}

// Dynamic Model Tree (the paper's contribution).
type (
	// DMT is the Dynamic Model Tree classifier.
	DMT = core.Tree
	// DMTConfig holds the DMT hyperparameters (Section V-D defaults).
	DMTConfig = core.Config
	// DMTChange describes one interpretable structural change of a DMT.
	DMTChange = core.ChangeEvent
)

// NewDMT returns a Dynamic Model Tree for the schema.
func NewDMT(cfg DMTConfig, schema Schema) *DMT { return core.New(cfg, schema) }

// LoadDMT restores a Dynamic Model Tree from either checkpoint format:
// an envelope written by Save / (*DMT).Save, or a legacy pre-envelope
// version-1 gob document.
//
// Deprecated: LoadDMT is a shim over the unified persistence API; new
// code should use Load, which restores any registered model. LoadDMT
// remains the only entry point for legacy v1 gob checkpoints.
func LoadDMT(r io.Reader) (*DMT, error) { return core.Load(r) }

// Baselines of the paper's comparison (Section VI-C).
type (
	// VFDT is the Hoeffding tree baseline; LeafMode selects MC/NB/NBA.
	VFDT = hoeffding.Tree
	// VFDTConfig holds the Hoeffding tree hyperparameters.
	VFDTConfig = hoeffding.Config
	// HTAda is the adaptive Hoeffding tree baseline.
	HTAda = hatada.Tree
	// HTAdaConfig holds its hyperparameters.
	HTAdaConfig = hatada.Config
	// EFDT is the Extremely Fast Decision Tree baseline.
	EFDT = efdt.Tree
	// EFDTConfig holds its hyperparameters.
	EFDTConfig = efdt.Config
	// FIMTDD is the FIMT-DD classification-variant baseline.
	FIMTDD = fimtdd.Tree
	// FIMTDDConfig holds its hyperparameters.
	FIMTDDConfig = fimtdd.Config
	// ARF is the Adaptive Random Forest ensemble.
	ARF = ensemble.ARF
	// LevBag is the Leveraging Bagging ensemble.
	LevBag = ensemble.LevBag
	// EnsembleConfig configures both ensembles.
	EnsembleConfig = ensemble.Config
)

// Leaf modes of the VFDT.
const (
	LeafMajorityClass      = hoeffding.MajorityClass
	LeafNaiveBayes         = hoeffding.NaiveBayes
	LeafNaiveBayesAdaptive = hoeffding.NaiveBayesAdaptive
)

// NewVFDT returns a Hoeffding tree (VFDT) for the schema.
func NewVFDT(cfg VFDTConfig, schema Schema) *VFDT { return hoeffding.New(cfg, schema) }

// NewHTAda returns an adaptive Hoeffding tree for the schema.
func NewHTAda(cfg HTAdaConfig, schema Schema) *HTAda { return hatada.New(cfg, schema) }

// NewEFDT returns an Extremely Fast Decision Tree for the schema.
func NewEFDT(cfg EFDTConfig, schema Schema) *EFDT { return efdt.New(cfg, schema) }

// NewFIMTDD returns the FIMT-DD classification variant for the schema.
func NewFIMTDD(cfg FIMTDDConfig, schema Schema) *FIMTDD { return fimtdd.New(cfg, schema) }

// NewARF returns an Adaptive Random Forest for the schema.
func NewARF(cfg EnsembleConfig, schema Schema) *ARF { return ensemble.NewARF(cfg, schema) }

// NewLevBag returns a Leveraging Bagging ensemble for the schema.
func NewLevBag(cfg EnsembleConfig, schema Schema) *LevBag { return ensemble.NewLevBag(cfg, schema) }

// NewClassifierByName builds any of the paper's models by its table name
// ("DMT", "FIMT-DD", "VFDT (MC)", "VFDT (NBA)", "HT-Ada", "EFDT",
// "Forest Ens.", "Bagging Ens.") configured as in Section VI-C.
func NewClassifierByName(name string, schema Schema, seed int64) (Classifier, error) {
	return eval.NewClassifier(name, schema, seed)
}

// Stream generators (Section VI-B).
type (
	// SEA is the SEA generator with abrupt drifts.
	SEA = synth.SEA
	// Agrawal is the Agrawal generator with incremental drift windows.
	Agrawal = synth.Agrawal
	// Hyperplane is the rotating-hyperplane generator.
	Hyperplane = synth.Hyperplane
	// ClusterStream is the Gaussian-cluster surrogate generator.
	ClusterStream = synth.Cluster
	// ClusterConfig parameterises a ClusterStream.
	ClusterConfig = synth.ClusterConfig
	// DriftKind selects a surrogate drift mechanism.
	DriftKind = synth.DriftKind
)

// Surrogate drift mechanisms.
const (
	DriftNone        = synth.DriftNone
	DriftAbrupt      = synth.DriftAbrupt
	DriftIncremental = synth.DriftIncremental
	DriftWalk        = synth.DriftWalk
)

// NewSEA returns a SEA stream (samples, label-noise probability, seed).
func NewSEA(samples int, noise float64, seed int64) *SEA { return synth.NewSEA(samples, noise, seed) }

// NewAgrawal returns an Agrawal stream with the paper's drift windows.
func NewAgrawal(samples int, perturbation float64, seed int64) *Agrawal {
	return synth.NewAgrawal(samples, perturbation, seed)
}

// NewHyperplane returns a rotating-hyperplane stream.
func NewHyperplane(samples, features int, noise float64, seed int64) *Hyperplane {
	return synth.NewHyperplane(samples, features, noise, seed)
}

// NewClusterStream returns a Gaussian-cluster surrogate stream.
func NewClusterStream(cfg ClusterConfig) *ClusterStream { return synth.NewCluster(cfg) }

// Categorical planted-concept stream and drift-scenario combinators.
type (
	// CategoricalConcept is the planted categorical-concept stream: the
	// label depends only on a hidden subset of a categorical attribute's
	// levels, with codes ordered so numeric thresholds cannot separate
	// the classes. Its Factorised method returns the same stream with the
	// categorical kind erased — the numeric-baseline comparison.
	CategoricalConcept = synth.CategoricalConcept
	// ConceptSwitch composes generators into abrupt, gradual or recurring
	// drift scenarios.
	ConceptSwitch = synth.ConceptSwitch
)

// NewCategoricalConcept returns a planted categorical-concept stream
// (samples, cardinality of the categorical feature, label noise, seed).
func NewCategoricalConcept(samples, card int, noise float64, seed int64) *CategoricalConcept {
	return synth.NewCategoricalConcept(samples, card, noise, seed)
}

// NewAbruptSwitch chains concepts with abrupt boundaries (one segment
// per concept).
func NewAbruptSwitch(samples int, seed int64, concepts ...Stream) *ConceptSwitch {
	return synth.NewAbruptSwitch(samples, seed, concepts...)
}

// NewGradualSwitch chains concepts with a linear mixing window of the
// given width (instances) at each boundary.
func NewGradualSwitch(samples, width int, seed int64, concepts ...Stream) *ConceptSwitch {
	return synth.NewGradualSwitch(samples, width, seed, concepts...)
}

// NewRecurringSwitch cycles through the concepts over the given number
// of segments, so each concept recurs.
func NewRecurringSwitch(samples, segments int, seed int64, concepts ...Stream) *ConceptSwitch {
	return synth.NewRecurringSwitch(samples, segments, seed, concepts...)
}

// MajorityPriors builds class priors with the given majority share.
func MajorityPriors(classes int, majorityShare float64) []float64 {
	return synth.MajorityPriors(classes, majorityShare)
}

// Table I registry.
type DatasetEntry = datasets.Entry

// Datasets returns the 13 Table I entries in the paper's order.
func Datasets() []DatasetEntry { return datasets.All() }

// DatasetByName looks up one Table I entry.
func DatasetByName(name string) (DatasetEntry, error) { return datasets.ByName(name) }

// Evaluation harness (Section VI-A).
type (
	// EvalOptions configures a prequential run.
	EvalOptions = eval.Options
	// EvalResult is one model's prequential run on one stream.
	EvalResult = eval.Result
	// IterStats are the per-iteration measurements.
	IterStats = eval.IterStats
	// ExperimentSuite runs the full reproduction.
	ExperimentSuite = eval.Suite
	// ExperimentResult holds a suite's results and renders the paper's
	// tables and figures.
	ExperimentResult = eval.SuiteResult
)

// RunCategoricalScenario runs the categorical payoff experiment — each
// native-split model on the planted categorical concept, native schema
// versus factorised (code-as-float) baseline — and renders the result
// table. progress may be nil.
func RunCategoricalScenario(scale float64, seed int64, progress io.Writer) (string, error) {
	return eval.RunCategoricalScenario(scale, seed, progress)
}

// Prequential runs test-then-train evaluation of a classifier on a
// stream (batches of EvalOptions.BatchFraction, default 0.1%).
func Prequential(c Classifier, s Stream, opts EvalOptions) (EvalResult, error) {
	return eval.Prequential(c, s, opts)
}

// NewMemoryStream wraps in-memory data in a replayable stream.
func NewMemoryStream(schema Schema, data Batch) Stream { return stream.NewMemory(schema, data) }

// LimitStream caps a stream at n instances.
func LimitStream(s Stream, n int) Stream { return stream.NewLimit(s, n) }

// WriteCSVStream materialises a stream to CSV and returns the row count.
func WriteCSVStream(w io.Writer, s Stream) (int, error) { return stream.WriteCSV(w, s) }

// ReadCSVStream loads a CSV stream into a replayable in-memory stream.
// numClasses 0 infers the class count from the labels.
func ReadCSVStream(r io.Reader, name string, numClasses int) (Stream, error) {
	return stream.ReadCSV(r, name, numClasses)
}

// FileStream is a stream backed by an open file; Close releases it.
type FileStream interface {
	Stream
	io.Closer
}

// OpenCSVStream opens a CSV file as a lazily-read stream: one row per
// Next, no whole-file materialisation — the loader for data sets larger
// than memory. numClasses 0 defaults to binary classification (a lazy
// reader cannot scan ahead to infer the label range); kinds and level
// dictionaries are honoured from the file's kinds row when present. The
// caller should Close the returned stream when done.
func OpenCSVStream(path string, numClasses int) (FileStream, error) {
	return stream.OpenCSV(path, stream.CSVOptions{NumClasses: numClasses})
}
