package repro

import (
	"sync"
	"testing"
)

// Hammer a Scorer-wrapped DMT with concurrent Predict/Proba calls while a
// learning loop trains it. Run under -race this verifies the serving
// path: goroutine-safe reads during online learning.
func TestScorerConcurrentPredictDuringLearn(t *testing.T) {
	gen := NewSEA(20_000, 0.1, 1)
	scorer := NewScorer(MustNew("DMT", gen.Schema(), WithSeed(1)))

	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			probe := []float64{float64(r) / readers, 0.5, 0.5}
			var proba []float64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if y := scorer.Predict(probe); y < 0 || y > 1 {
					t.Errorf("reader %d got class %d", r, y)
					return
				}
				proba = scorer.Proba(probe, proba)
				_ = scorer.Complexity()
			}
		}(r)
	}

	// The learning loop: batches of 100, test-then-train through the same
	// Scorer the readers are using.
	if _, err := Prequential(scorer, gen, EvalOptions{}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if scorer.Complexity().Leaves < 1 {
		t.Fatal("scorer wrapped model did not learn")
	}
	if scorer.Name() != "DMT" {
		t.Fatalf("Name() = %q", scorer.Name())
	}
	if scorer.Unwrap() == nil {
		t.Fatal("Unwrap() = nil")
	}
}

// The multiclass variant of the hammer: a >2-class DMT carries Softmax
// leaf models, whose Predict historically shared a scratch buffer — a
// data race under Scorer's concurrent read lock. Run under -race this
// pins the re-entrancy of the multiclass serving path.
func TestScorerConcurrentPredictMulticlass(t *testing.T) {
	gen := NewClusterStream(ClusterConfig{
		Name: "hammer4", Samples: 8_000, Features: 3, Classes: 4, Seed: 7,
	})
	scorer := NewScorer(MustNew("DMT", gen.Schema(), WithSeed(2)))

	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			probe := []float64{float64(r) / readers, 0.5, 0.5}
			proba := make([]float64, 4)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if y := scorer.Predict(probe); y < 0 || y > 3 {
					t.Errorf("reader %d got class %d", r, y)
					return
				}
				scorer.Proba(probe, proba)
			}
		}(r)
	}
	if _, err := Prequential(scorer, gen, EvalOptions{}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}

// The one-hot fallback for models without a probabilistic interface.
func TestScorerProbaFallback(t *testing.T) {
	s := NewScorer(constClassifier{})
	p := s.Proba([]float64{0.1, 0.2}, make([]float64, 2))
	if p[0] != 0 || p[1] != 1 {
		t.Fatalf("one-hot fallback = %v", p)
	}
	if p = s.Proba([]float64{0.1, 0.2}, nil); len(p) != 2 || p[1] != 1 {
		t.Fatalf("nil-out fallback = %v", p)
	}
}

// constClassifier is a minimal non-probabilistic classifier.
type constClassifier struct{}

func (constClassifier) Learn(Batch)            {}
func (constClassifier) Predict([]float64) int  { return 1 }
func (constClassifier) Complexity() Complexity { return Complexity{} }
func (constClassifier) Name() string           { return "const" }

// The snapshot hammer: wait-free readers (including the batch APIs)
// against a DMT learning through Prequential, via the public Serve path.
// Run under -race this pins the lock-free serving pattern end to end.
func TestSnapshotScorerConcurrentPredictDuringLearn(t *testing.T) {
	gen := NewSEA(20_000, 0.1, 1)
	scorer := MustServe("DMT", gen.Schema(),
		WithServeModelOptions(WithSeed(1)), WithPublishEvery(2))

	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			probe := []float64{float64(r) / readers, 0.5, 0.5}
			rows := [][]float64{probe, {0.2, 0.4, 0.6}}
			var proba []float64
			var preds []int
			for {
				select {
				case <-stop:
					return
				default:
				}
				if y := scorer.Predict(probe); y < 0 || y > 1 {
					t.Errorf("reader %d got class %d", r, y)
					return
				}
				proba = scorer.Proba(probe, proba)
				preds = scorer.PredictBatch(rows, preds)
				_ = scorer.Complexity()
			}
		}(r)
	}
	if _, err := Prequential(scorer, gen, EvalOptions{}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if scorer.Complexity().Leaves < 1 {
		t.Fatal("scorer wrapped model did not learn")
	}
}

// Prequential evaluation through the snapshot scorer must report the
// same science as the bare model: identical F1, splits and parameters
// per iteration (Seconds naturally differ).
func TestPrequentialThroughSnapshotMatchesBare(t *testing.T) {
	bare := MustNew("DMT", NewSEA(1, 0, 0).Schema(), WithSeed(3))
	res1, err := Prequential(bare, NewSEA(20_000, 0.1, 3), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	scorer := MustServe("DMT", NewSEA(1, 0, 0).Schema(), WithServeModelOptions(WithSeed(3)))
	res2, err := Prequential(scorer, NewSEA(20_000, 0.1, 3), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Iters) != len(res2.Iters) {
		t.Fatalf("iteration counts differ: %d vs %d", len(res1.Iters), len(res2.Iters))
	}
	for i := range res1.Iters {
		a, b := res1.Iters[i], res2.Iters[i]
		if a.F1 != b.F1 || a.Splits != b.Splits || a.Params != b.Params {
			t.Fatalf("iteration %d differs: bare %+v vs snapshot %+v", i, a, b)
		}
	}
}
