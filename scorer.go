package repro

import "sync"

// Scorer makes a classifier safe for concurrent serving: any number of
// goroutines may call Predict/Proba/Complexity (read lock) while a single
// learning loop calls Learn (write lock). This is the online-learning
// serving pattern the paper targets — the model keeps training on the
// live stream while prediction traffic reads it.
//
// The wrapped classifier's Predict, Proba and Complexity must be
// read-only, which holds for every model in this repository (all mutation
// happens in Learn).
type Scorer struct {
	mu    sync.RWMutex
	inner Classifier
}

// NewScorer wraps a classifier for concurrent use. Scorer itself
// implements Classifier, so it can be passed straight to Prequential.
func NewScorer(c Classifier) *Scorer { return &Scorer{inner: c} }

// Unwrap returns the wrapped classifier. Callers must not use it
// concurrently with the Scorer.
func (s *Scorer) Unwrap() Classifier { return s.inner }

// Learn implements Classifier under the write lock.
func (s *Scorer) Learn(b Batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Learn(b)
}

// Predict implements Classifier under a read lock.
func (s *Scorer) Predict(x []float64) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Predict(x)
}

// Proba returns class probabilities under a read lock. Models without a
// probabilistic interface degrade to a one-hot vector of Predict; since
// the class count is not recoverable from the Classifier interface
// alone, that fallback vector keeps len(out) when out covers the
// predicted class and is grown to exactly predicted class + 1 entries
// otherwise — pass out of length NumClasses for a fixed-length result.
func (s *Scorer) Proba(x []float64, out []float64) []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if pc, ok := s.inner.(ProbabilisticClassifier); ok {
		return pc.Proba(x, out)
	}
	y := s.inner.Predict(x)
	if len(out) <= y {
		out = append(out[:0], make([]float64, y+1)...)
	}
	for i := range out {
		out[i] = 0
	}
	out[y] = 1
	return out
}

// Complexity implements Classifier under a read lock.
func (s *Scorer) Complexity() Complexity {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Complexity()
}

// Name implements Classifier.
func (s *Scorer) Name() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Name()
}
