package repro

import (
	"repro/internal/model"
	"repro/internal/serve"
)

// The concurrent serving layer: a Scorer makes a classifier safe for
// concurrent serving — any number of goroutines may call the read
// methods (Predict, Proba, PredictBatch, ProbaBatch, Complexity) while
// a single learning loop calls Learn. This is the online-learning
// serving pattern the paper targets: the model keeps training on the
// live stream while prediction traffic reads it.
//
// Three implementations are available (see Serve for registry-driven
// construction):
//
//   - LockedScorer (NewScorer): reads under a sync.RWMutex read lock —
//     simple, always applicable, but reads stall while Learn holds the
//     write lock.
//   - SnapshotScorer (NewSnapshotScorer / Serve): reads are wait-free —
//     they load an immutable model snapshot through an atomic pointer
//     that Learn republishes every WithPublishEvery batches.
//   - ShardedScorer (Serve with WithShards): rows hash across N
//     independent replicas for multi-core serving and training.
type Scorer = serve.Scorer

type (
	// LockedScorer is the RWMutex-based Scorer implementation.
	LockedScorer = serve.LockScorer
	// SnapshotScorer is the lock-free snapshot-publishing Scorer.
	SnapshotScorer = serve.SnapshotScorer
	// ShardedScorer hashes rows across independent learner replicas.
	ShardedScorer = serve.ShardedScorer
	// ModelSnapshot is an immutable serving view of a classifier.
	ModelSnapshot = model.Snapshot
	// Snapshotter is implemented by every registered learner: it exports
	// the immutable serving snapshot the SnapshotScorer publishes.
	Snapshotter = model.Snapshotter
)

// NewScorer wraps a classifier behind a sync.RWMutex. It remains the
// conservative default for arbitrary classifiers; use NewSnapshotScorer
// (or Serve) for wait-free reads.
func NewScorer(c Classifier) *LockedScorer { return serve.NewLocked(c) }

// NewSnapshotScorer wraps a snapshot-capable classifier (every model
// built by New is one) so reads are wait-free: after each publishEvery
// Learn calls the scorer clones an immutable serving snapshot and
// installs it with an atomic store; Predict/Proba/Complexity read the
// current snapshot without taking any lock. publishEvery <= 1 publishes
// after every Learn, making reads between Learn calls byte-identical to
// a locked scorer over the same model.
func NewSnapshotScorer(c Classifier, publishEvery int) (*SnapshotScorer, error) {
	return serve.NewSnapshot(c, publishEvery)
}

// NewSnapshotOnChangeScorer wraps a snapshot-capable classifier in
// publish-on-change mode: the serving snapshot is republished only when
// the model's tree structure moved, not after every Learn (see
// WithPublishOnChange). Every Scorer also implements
// Checkpoint/Restore, persisting the served model through the same
// envelopes as Save/Load.
func NewSnapshotOnChangeScorer(c Classifier) (*SnapshotScorer, error) {
	return serve.NewSnapshotOnChange(c)
}
