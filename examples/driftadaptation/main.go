// Drift adaptation: reproduce the Figure 3 story on one stream — after an
// abrupt concept drift the Dynamic Model Tree dips less and recovers
// faster than Hoeffding-style trees, while keeping far fewer splits, and
// it does so WITHOUT any drift detector (Section IV-D of the paper).
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro"
)

func main() {
	const samples = 120_000
	models := []string{"DMT", "VFDT (MC)", "HT-Ada", "EFDT", "FIMT-DD"}

	results := map[string]repro.EvalResult{}
	for _, name := range models {
		gen := repro.NewSEA(samples, 0.1, 42) // 4 abrupt drifts
		clf, err := repro.New(name, gen.Schema(), repro.WithSeed(42))
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.Prequential(clf, gen, repro.EvalOptions{})
		if err != nil {
			log.Fatal(err)
		}
		results[name] = res
	}

	iters := len(results["DMT"].Iters)
	driftIters := []int{iters / 5, 2 * iters / 5, 3 * iters / 5, 4 * iters / 5}
	fmt.Printf("SEA with abrupt drifts at iterations %v (of %d)\n\n", driftIters, iters)

	// Per-drift dip and recovery: F1 averaged over the 30 iterations
	// before the drift, right after it, and 30-60 after it.
	w := 30
	fmt.Printf("%-10s", "model")
	for d := range driftIters {
		fmt.Printf("  drift%d: before -> dip -> recov", d+1)
	}
	fmt.Println()
	for _, name := range models {
		r := results[name]
		f1 := r.Series(func(s repro.IterStats) float64 { return s.F1 })
		fmt.Printf("%-10s", name)
		for _, d := range driftIters {
			before := mean(f1[max(d-w, 0):d])
			dip := mean(f1[d:min(d+w, len(f1))])
			recov := mean(f1[min(d+w, len(f1)-1):min(d+2*w, len(f1))])
			fmt.Printf("  %19.3f -> %.3f -> %.3f", before, dip, recov)
		}
		fmt.Println()
	}

	fmt.Println("\nComplexity over time (log #splits, end of each fifth):")
	fmt.Printf("%-10s %8s %8s %8s %8s %8s\n", "model", "20%", "40%", "60%", "80%", "100%")
	for _, name := range models {
		r := results[name]
		sp := r.Series(func(s repro.IterStats) float64 { return math.Log(math.Max(s.Splits, 1)) })
		fmt.Printf("%-10s", name)
		for f := 1; f <= 5; f++ {
			fmt.Printf(" %8.2f", sp[f*len(sp)/5-1])
		}
		fmt.Println()
	}

	// Simple trace of the DMT's F1 with drift markers.
	fmt.Println("\nDMT sliding-window F1 (w=20), '|' marks a drift:")
	dmtF1 := slidingMean(results["DMT"].Series(func(s repro.IterStats) float64 { return s.F1 }), 20)
	step := len(dmtF1) / 40
	for i := 0; i < len(dmtF1); i += step {
		marker := " "
		for _, d := range driftIters {
			if d >= i && d < i+step {
				marker = "|"
			}
		}
		bar := strings.Repeat("#", int(dmtF1[i]*60))
		fmt.Printf("  %s %5d %.3f %s\n", marker, i, dmtF1[i], bar)
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func slidingMean(xs []float64, w int) []float64 {
	out := make([]float64, len(xs))
	var sum float64
	for i, v := range xs {
		sum += v
		if i >= w {
			sum -= xs[i-w]
			out[i] = sum / float64(w)
		} else {
			out[i] = sum / float64(i+1)
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
