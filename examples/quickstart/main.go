// Quickstart: train a Dynamic Model Tree prequentially on the SEA stream
// and print the paper's headline measures — predictive quality (F1) and
// interpretability (number of splits).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 50k-instance SEA stream with 10% label noise and four abrupt
	// concept drifts (Section VI-B of the paper).
	gen := repro.NewSEA(50_000, 0.1, 42)

	// A Dynamic Model Tree with the paper's default hyperparameters:
	// logit simple models (binary target), learning rate 0.05, AIC
	// epsilon 1e-7, candidate cap 3m (Section V-D).
	dmt := repro.NewDMT(repro.DMTConfig{Seed: 42}, gen.Schema())

	// Prequential (test-then-train) evaluation with 0.1% batches.
	res, err := repro.Prequential(dmt, gen, repro.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}

	f1Mean, f1Std := res.F1()
	splitsMean, _ := res.Splits()
	fmt.Printf("DMT on SEA (%d iterations)\n", len(res.Iters))
	fmt.Printf("  F1:     %.3f ± %.3f\n", f1Mean, f1Std)
	fmt.Printf("  Splits: %.1f (avg over time)\n", splitsMean)
	fmt.Printf("  Final:  %v\n", dmt)

	// The final tree remains human-readable — the whole point.
	fmt.Println("\nDeployed model:")
	fmt.Print(dmt.Describe())
}
