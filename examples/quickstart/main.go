// Quickstart: train a Dynamic Model Tree prequentially on the SEA stream
// through the serving API — registry construction with functional
// options, a cancellable run, and a Scorer serving concurrent predictions
// while the model keeps learning.
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro"
)

func main() {
	// A 50k-instance SEA stream with 10% label noise and four abrupt
	// concept drifts (Section VI-B of the paper).
	gen := repro.NewSEA(50_000, 0.1, 42)

	// Build the model by registered name. Options replace config structs;
	// zero options reproduce the paper's Section V-D defaults (logit
	// simple models, learning rate 0.05, AIC epsilon 1e-7).
	dmt, err := repro.New("DMT", gen.Schema(), repro.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// Wrap it for serving: readers may call Predict at any time while the
	// learning loop holds the write path.
	scorer := repro.NewScorer(dmt)

	// Serve predictions concurrently with training (online learning's
	// whole point: the deployed model is the training model).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var served atomic.Int64
	go func() {
		probe := []float64{0.5, 0.5, 0.5}
		for ctx.Err() == nil {
			scorer.Predict(probe)
			served.Add(1)
			time.Sleep(50 * time.Microsecond)
		}
	}()

	// Prequential (test-then-train) evaluation with 0.1% batches,
	// cancellable through the context.
	res, err := repro.PrequentialContext(ctx, scorer, gen, repro.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cancel()

	f1Mean, f1Std := res.F1()
	splitsMean, _ := res.Splits()
	fmt.Printf("DMT on SEA (%d iterations, %d predictions served during training)\n",
		len(res.Iters), served.Load())
	fmt.Printf("  F1:     %.3f ± %.3f\n", f1Mean, f1Std)
	fmt.Printf("  Splits: %.1f (avg over time)\n", splitsMean)

	// The final tree remains human-readable — the whole point.
	fmt.Println("\nDeployed model:")
	fmt.Print(dmt.(*repro.DMT).Describe())
}
