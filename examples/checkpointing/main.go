// Checkpointing: a production concern the paper's setting implies —
// streams are unbounded, so learners must survive process restarts.
// This example shows the two layers of the unified persistence API:
//
//  1. Model checkpoints: repro.Save writes ANY registered model as a
//     self-describing envelope and repro.Load reconstructs it without
//     the caller naming a type. A save → load → continue run is
//     byte-identical to a run that never stopped (the checkpoint
//     carries sufficient statistics, detector windows and RNG state).
//  2. Experiment resume: eval cells persist their results per cell, so
//     an interrupted experiment grid restarts without redoing finished
//     work (the same mechanism behind dmtbench -checkpoint -resume).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	modelCheckpointDemo()
	runnerResumeDemo()
}

// modelCheckpointDemo trains two models mid-stream, checkpoints them
// through the registry-wide API, restores them in a "new process" and
// verifies the resumed runs match uninterrupted ones exactly.
func modelCheckpointDemo() {
	const samples = 60_000
	// The unified API is model-agnostic: the same code checkpoints the
	// DMT and an ensemble (or any of the other registered learners).
	for _, name := range []string{"DMT", "Forest Ens."} {
		ckptPath := filepath.Join(os.TempDir(), "repro-checkpoint.ckpt")

		// --- Process 1: train on the first half, checkpoint, exit. ---
		gen := repro.NewSEA(samples, 0.1, 42)
		clf := repro.MustNew(name, gen.Schema(), repro.WithSeed(42))
		control := repro.MustNew(name, gen.Schema(), repro.WithSeed(42))

		half := repro.LimitStream(gen, samples/2)
		if _, err := repro.Prequential(clf, half, repro.EvalOptions{}); err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(ckptPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := repro.Save(f, clf); err != nil { // any registered model
			log.Fatal(err)
		}
		f.Close()
		info, _ := os.Stat(ckptPath)
		fmt.Printf("%-12s checkpointed after %d instances (%d bytes)\n", name, samples/2, info.Size())

		// --- Process 2: restore and continue on the second half. The
		// envelope names the model, so Load needs no type from us. ---
		f, err = os.Open(ckptPath)
		if err != nil {
			log.Fatal(err)
		}
		restored, err := repro.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		// gen continues where the first half stopped.
		resResumed, err := repro.Prequential(restored, gen, repro.EvalOptions{})
		if err != nil {
			log.Fatal(err)
		}

		// --- Control: the same model, never interrupted. ---
		gen2 := repro.NewSEA(samples, 0.1, 42)
		if _, err := repro.Prequential(control, gen2, repro.EvalOptions{}); err != nil {
			log.Fatal(err)
		}

		// The resumed model is byte-identical to the uninterrupted one:
		// same predictions everywhere, same complexity.
		probe := repro.NewSEA(2_000, 0, 7)
		diverged := 0
		for {
			inst, err := probe.Next()
			if err != nil {
				break
			}
			if restored.Predict(inst.X) != control.Predict(inst.X) {
				diverged++
			}
		}
		f1, _ := resResumed.F1()
		fmt.Printf("%-12s second-half F1 %.3f; resumed vs uninterrupted: %d diverging predictions, complexity equal: %v\n",
			name, f1, diverged, restored.Complexity() == control.Complexity())
		os.Remove(ckptPath)
	}
}

// runnerResumeDemo interrupts an experiment grid after half its cells,
// then resumes it: completed cells load from the checkpoint directory
// instead of re-running.
func runnerResumeDemo() {
	dir, err := os.MkdirTemp("", "repro-cells-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	var cells []repro.Cell
	for _, ds := range []string{"SEA", "Hyperplane"} {
		entry, err := repro.DatasetByName(ds)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range []string{"DMT", "VFDT (MC)"} {
			cells = append(cells, repro.Cell{Dataset: entry, Model: m, Seed: repro.CellSeed(42, ds, m)})
		}
	}
	base := repro.Runner{Workers: 2, Scale: 0.01, MinBatchSize: 32, CheckpointDir: dir}

	// "First process": only half the grid finishes before the kill.
	if _, err := base.Run(context.Background(), cells[:2]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated kill after %d of %d cells (checkpoints in %s)\n", 2, len(cells), dir)

	// "Second process": resume the full grid; finished cells are loaded
	// verbatim (byte-identical results), the rest run fresh.
	resumed := base
	resumed.Resume = true
	resumed.Progress = os.Stdout
	res, err := resumed.Run(context.Background(), cells)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resume complete: %d datasets evaluated\n", len(res.Results))
}
