// Checkpointing: a production concern the paper's setting implies —
// streams are unbounded, so the learner must survive process restarts.
// This example trains a DMT on the first half of a drifting stream,
// checkpoints it to disk, restores it in a "new process", and continues
// on the second half, comparing against an uninterrupted run.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	const samples = 60_000
	ckptPath := filepath.Join(os.TempDir(), "dmt-checkpoint.gob")

	// --- Process 1: train on the first half, checkpoint, exit. ---
	gen := repro.NewSEA(samples, 0.1, 42)
	dmt := repro.MustNew("DMT", gen.Schema(), repro.WithSeed(42)).(*repro.DMT)

	half := repro.LimitStream(gen, samples/2)
	if _, err := repro.Prequential(dmt, half, repro.EvalOptions{}); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := dmt.Save(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(ckptPath)
	fmt.Printf("checkpointed after %d instances: %v (%d bytes)\n", samples/2, dmt, info.Size())

	// --- Process 2: restore and continue on the second half. ---
	f, err = os.Open(ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := repro.LoadDMT(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	// gen continues where the first half stopped (same generator state).
	resResumed, err := repro.Prequential(restored, gen, repro.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	f1Resumed, _ := resResumed.F1()

	// --- Control: one uninterrupted run over the full stream. ---
	gen2 := repro.NewSEA(samples, 0.1, 42)
	control := repro.MustNew("DMT", gen2.Schema(), repro.WithSeed(42))
	resControl, err := repro.Prequential(control, gen2, repro.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Second-half F1 of the control run, to compare like with like.
	var sum float64
	secondHalf := resControl.Iters[len(resControl.Iters)/2:]
	for _, it := range secondHalf {
		sum += it.F1
	}
	f1Control := sum / float64(len(secondHalf))

	fmt.Printf("second-half F1: resumed %.3f vs uninterrupted %.3f\n", f1Resumed, f1Control)
	fmt.Printf("restored model: %v\n", restored)
	os.Remove(ckptPath)

	if diff := f1Resumed - f1Control; diff < -0.05 {
		fmt.Println("WARNING: resumed run degraded — checkpoint may be lossy")
	} else {
		fmt.Println("checkpoint round trip preserved learning state")
	}
}
