// Credit scoring: the introduction's motivating use case — a regulated,
// high-stakes streaming decision (loan default prediction) where the model
// must stay accurate under concept drift AND remain explainable (GDPR-style
// requirements, Section I of the paper).
//
// The example builds a synthetic credit-application stream whose risk
// concept changes abruptly mid-stream (e.g. a macroeconomic shock), trains
// a DMT and a VFDT side by side, and shows (a) the drift recovery of both
// and (b) the per-applicant explanation the DMT's leaf models provide.
package main

import (
	"fmt"
	"log"

	"repro"
)

// Feature layout of the synthetic credit stream.
var featureNames = []string{
	"income", "debt_ratio", "credit_history", "employment_years",
	"loan_amount", "collateral", "age", "prior_defaults",
}

func main() {
	schema := repro.Schema{
		NumFeatures:  len(featureNames),
		NumClasses:   2, // 0 = repaid, 1 = default
		Name:         "CreditApplications",
		FeatureNames: featureNames,
	}

	// A cluster surrogate with one abrupt drift at 50%: the "default"
	// population shifts (changed macro conditions). ~12% default rate.
	gen := repro.NewClusterStream(repro.ClusterConfig{
		Name: schema.Name, Samples: 60_000,
		Features: schema.NumFeatures, Classes: 2,
		Priors: repro.MajorityPriors(2, 0.88),
		Std:    0.14, LabelNoise: 0.04,
		Drift: repro.DriftAbrupt, DriftPoints: []float64{0.5},
		Seed: 7,
	})
	// Re-attach the named schema for readable explanations.
	genSchema := gen.Schema()
	genSchema.FeatureNames = featureNames
	genSchema.Name = schema.Name

	// Registry construction with functional options — the serving API.
	dmt := repro.MustNew("DMT", genSchema, repro.WithSeed(7)).(*repro.DMT)
	vfdt := repro.MustNew("VFDT (MC)", genSchema, repro.WithSeed(7))

	resDMT, err := repro.Prequential(dmt, gen, repro.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	gen.Reset()
	resVFDT, err := repro.Prequential(vfdt, gen, repro.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Credit scoring under a mid-stream macro shock (abrupt drift at 50%):")
	for _, r := range []repro.EvalResult{resDMT, resVFDT} {
		f1, std := r.F1()
		sp, _ := r.Splits()
		fmt.Printf("  %-10s F1 %.3f ± %.3f   splits %.1f\n", r.Model, f1, std, sp)
	}

	// Drift recovery: F1 in the 50 iterations before vs after the drift.
	half := len(resDMT.Iters) / 2
	window := 50
	avg := func(r repro.EvalResult, lo, hi int) float64 {
		var s float64
		for _, it := range r.Iters[lo:hi] {
			s += it.F1
		}
		return s / float64(hi-lo)
	}
	fmt.Printf("\nF1 around the drift (window %d iterations):\n", window)
	fmt.Printf("  %-10s before %.3f | right after %.3f | recovered %.3f\n",
		"DMT", avg(resDMT, half-window, half), avg(resDMT, half, half+window),
		avg(resDMT, len(resDMT.Iters)-window, len(resDMT.Iters)))
	fmt.Printf("  %-10s before %.3f | right after %.3f | recovered %.3f\n",
		"VFDT", avg(resVFDT, half-window, half), avg(resVFDT, half, half+window),
		avg(resVFDT, len(resVFDT.Iters)-window, len(resVFDT.Iters)))

	// Per-applicant explanation: route one application to its leaf and
	// read the default-risk weights of the local linear model.
	applicant := []float64{0.35, 0.72, 0.28, 0.15, 0.66, 0.22, 0.41, 0.58}
	pred := dmt.Predict(applicant)
	weights := dmt.LeafWeights(applicant, 1)
	fmt.Printf("\nApplicant decision: %s\n", map[int]string{0: "approve (predicted repaid)", 1: "review (predicted default)"}[pred])
	fmt.Println("Local default-risk weights at this applicant's leaf:")
	for j, w := range weights {
		dir := "raises"
		if w < 0 {
			dir = "lowers"
		}
		fmt.Printf("  %-17s %+6.3f (%s risk as it grows)\n", featureNames[j], w, dir)
	}

	// Every structural change is attributable to a measured loss gain —
	// the paper's notion of interpretable online learning (Section I-A).
	fmt.Println("\nWhy did the model change? (DMT change log)")
	changes := dmt.Changes()
	if len(changes) == 0 {
		fmt.Println("  no structural change: the risk concept stayed linear, so the")
		fmt.Println("  minimality property kept the model at a single scorecard —")
		fmt.Println("  the drift was absorbed by the leaf model's weights alone.")
		return
	}
	lo := 0
	if len(changes) > 8 {
		lo = len(changes) - 8
	}
	for _, ev := range changes[lo:] {
		fmt.Printf("  step %4d: %-7s on %s <= %.3f (gain %.1f over AIC threshold %.1f)\n",
			ev.Step, ev.Kind, featureNames[ev.Feature], ev.Threshold, ev.Gain, ev.AICThreshold)
	}
}
