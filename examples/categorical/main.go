// Categorical features: the payoff scenario for native equality/subset
// splits. The stream's concept depends only on a categorical attribute —
// the label is 1 exactly when the level belongs to a hidden subset — and
// the level codes alternate between the classes, so no numeric threshold
// on the code separates them. A learner that treats the code as a float
// (the "factorised" baseline) has to carve out every level with a stack
// of threshold splits; a learner with native categorical splits recovers
// the concept with a single subset (or a few equality) tests.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	const (
		samples = 60_000
		card    = 8
		noise   = 0.05
		seed    = 42
	)
	models := []string{"DMT", "VFDT (MC)"}

	fmt.Printf("Planted concept: y = 1 iff cat ∈ {odd levels}, cardinality %d, %d%% label noise\n\n",
		card, int(noise*100))
	fmt.Printf("%-12s %-22s %8s %8s\n", "model", "encoding", "F1", "splits")

	for _, name := range models {
		native := repro.NewCategoricalConcept(samples, card, noise, seed)
		for _, enc := range []struct {
			label string
			strm  repro.Stream
		}{
			{"native categorical", native},
			{"factorised (as float)", native.Factorised()},
		} {
			clf, err := repro.New(name, enc.strm.Schema(), repro.WithSeed(seed))
			if err != nil {
				log.Fatal(err)
			}
			res, err := repro.Prequential(clf, enc.strm, repro.EvalOptions{MinBatchSize: 32})
			if err != nil {
				log.Fatal(err)
			}
			f1, _ := res.F1()
			sp, _ := res.Splits()
			fmt.Printf("%-12s %-22s %8.3f %8.1f\n", name, enc.label, f1, sp)

			if dmt, ok := clf.(*repro.DMT); ok && enc.label == "native categorical" {
				fmt.Println("\n  DMT structure learned on the native encoding:")
				for _, line := range strings.Split(strings.TrimRight(dmt.Describe(), "\n"), "\n") {
					fmt.Println("    " + line)
				}
				fmt.Println()
			}
		}
	}

	fmt.Println("\nThe same concept under drift (abrupt switch to the complementary subset):")
	a := repro.NewCategoricalConcept(samples/2, card, noise, seed)
	b := repro.NewCategoricalConcept(samples/2, card, noise, seed+1)
	drift := repro.NewAbruptSwitch(samples, seed, a, b)
	clf, err := repro.New("DMT", drift.Schema(), repro.WithSeed(seed))
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Prequential(clf, drift, repro.EvalOptions{MinBatchSize: 32})
	if err != nil {
		log.Fatal(err)
	}
	f1, _ := res.F1()
	fmt.Printf("  DMT on %s: F1 %.3f over %d iterations\n", drift.Schema().Name, f1, len(res.Iters))
}
