// Serving: lock-free prediction during online learning. A SnapshotScorer
// publishes an immutable model snapshot through an atomic pointer after
// every few Learn calls, so read traffic (Predict/Proba and the batch
// APIs) is wait-free and never stalls behind training — the deployment
// mode the paper targets, an interpretable model that keeps learning
// while it serves. The program trains a DMT on a drifting SEA stream
// while reader goroutines hammer the scorer, then contrasts a
// hash-sharded deployment.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

func main() {
	gen := repro.NewSEA(60_000, 0.1, 42)

	// Registry-driven serving: build the model by name and wrap it in
	// the lock-free snapshot scorer in one call. The publish cadence
	// trades staleness for clone cost: with 4, reads serve a state at
	// most 3 batches old.
	scorer, err := repro.Serve("DMT", gen.Schema(),
		repro.WithServeModelOptions(repro.WithSeed(42)),
		repro.WithPublishEvery(4))
	if err != nil {
		log.Fatal(err)
	}

	// Wait-free readers: no read ever blocks, even mid-Learn.
	var served atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rows := [][]float64{
				{0.2 * float64(r), 0.5, 0.5},
				{0.9, 0.1, 0.4},
			}
			var preds []int
			proba := make([]float64, gen.Schema().NumClasses)
			for {
				select {
				case <-stop:
					return
				default:
				}
				preds = scorer.PredictBatch(rows, preds) // one consistent snapshot
				proba = scorer.Proba(rows[0], proba)
				served.Add(int64(len(rows)))
			}
		}(r)
	}

	// The learning loop: train on the live stream through the scorer.
	trained := 0
	for {
		batch, err := nextBatch(gen, 100)
		if err != nil {
			break
		}
		scorer.Learn(batch)
		trained += batch.Len()
	}
	close(stop)
	wg.Wait()

	comp := scorer.Complexity()
	fmt.Printf("trained on %d instances while serving %d wait-free predictions\n",
		trained, served.Load())
	fmt.Printf("deployed snapshot: %d inner nodes, %d leaves, depth %d\n",
		comp.Inner, comp.Leaves, comp.Depth)

	// Sharded serving: rows hash across independent replicas, so both
	// learning and serving scale across cores (each replica sees 1/N of
	// the stream — a throughput/accuracy trade-off).
	sharded := repro.MustServe("DMT", gen.Schema(),
		repro.WithServeModelOptions(repro.WithSeed(42)),
		repro.WithShards(4))
	gen2 := repro.NewSEA(60_000, 0.1, 43)
	for {
		batch, err := nextBatch(gen2, 100)
		if err != nil {
			break
		}
		sharded.Learn(batch)
	}
	fmt.Printf("sharded deployment: %d total leaves across 4 replicas\n",
		sharded.Complexity().Leaves)

	networkDemo()
}

// networkDemo is the two-process pattern in one process: a trainer
// serves predictions AND its checkpoint envelope over HTTP while it
// keeps learning; a stateless replica bootstraps from that envelope,
// serves the same model, and follows the trainer so every structural
// advance is installed hot — zero read downtime. In production the two
// halves are separate `dmtserve` processes:
//
//	dmtserve -addr :8080 -model "VFDT (MC)" -dataset SEA   # trainer
//	dmtserve -addr :8081 -follow http://trainer:8080       # replica
func networkDemo() {
	gen := repro.NewSEA(60_000, 0.1, 7)
	trainer, err := repro.Serve("VFDT (MC)", gen.Schema(),
		repro.WithServeModelOptions(repro.WithSeed(7)))
	if err != nil {
		log.Fatal(err)
	}
	// Pre-train so the first envelope already has structure.
	for i := 0; i < 200; i++ {
		b, err := nextBatch(gen, 100)
		if err != nil {
			break
		}
		trainer.Learn(b)
	}

	// The trainer's HTTP side: predictions, hot swap, envelope feed.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ps := repro.NewPredictionServer(trainer, repro.ServerConfig{})
	defer ps.Close()
	hs := &http.Server{Handler: ps.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	trainerURL := "http://" + ln.Addr().String()

	// The replica: no local model, no dataset — everything arrives as
	// envelope bytes over HTTP.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	replica, v0, err := repro.BootstrapScorer(ctx, trainerURL, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica bootstrapped %s at structure version %d over HTTP\n", replica.Name(), v0)

	installs := make(chan uint64, 16)
	go repro.Follow(ctx, trainerURL, replica, repro.FollowConfig{
		Interval:  10 * time.Millisecond,
		Wait:      2 * time.Second,
		OnInstall: func(v uint64) { installs <- v },
	})

	// Replica reads keep flowing while the trainer advances and new
	// envelopes install underneath them.
	var replicaReads atomic.Int64
	readStop := make(chan struct{})
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		row := []float64{5, 5, 5}
		for {
			select {
			case <-readStop:
				return
			default:
				replica.Predict(row)
				replicaReads.Add(1)
			}
		}
	}()

	// Advance the trainer until its structure version moves, then wait
	// for the replica to converge to it.
	for i := 0; i < 400; i++ {
		b, err := nextBatch(gen, 100)
		if err != nil {
			break
		}
		trainer.Learn(b)
		if v, _ := trainer.StructureVersion(); v != v0 {
			break
		}
	}
	vTrainer, _ := trainer.StructureVersion()
	deadline := time.After(10 * time.Second)
	vReplica := v0
	for vReplica == v0 {
		select {
		case vReplica = <-installs:
		case <-deadline:
			log.Fatal("replica never converged")
		}
	}
	close(readStop)
	readWG.Wait()
	fmt.Printf("trainer advanced to version %d; replica installed version %d hot, %d reads served with zero downtime\n",
		vTrainer, vReplica, replicaReads.Load())

	faultToleranceDemo()
}

// faultToleranceDemo shows graceful degradation through a trainer
// outage: a replica follows a trainer through a fault-injecting
// transport whose schedule window stages a total partition. The
// follower's circuit breaker opens (no more hammering a dead trainer),
// the replica keeps serving its last installed snapshot while
// reporting nonzero staleness, and once the window closes the
// half-open probe readmits the trainer and the replica reconverges.
// In production the same wiring is `dmtserve -follow ... -chaos
// 'drop@1'` for drills, minus the chaos for real deployments.
func faultToleranceDemo() {
	gen := repro.NewSEA(60_000, 0.1, 9)
	trainer := repro.MustServe("VFDT (MC)", gen.Schema(),
		repro.WithServeModelOptions(repro.WithSeed(9)))
	for i := 0; i < 200; i++ {
		b, err := nextBatch(gen, 100)
		if err != nil {
			break
		}
		trainer.Learn(b)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	trainerPS := repro.NewPredictionServer(trainer, repro.ServerConfig{})
	defer trainerPS.Close()
	hs := &http.Server{Handler: trainerPS.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	trainerURL := "http://" + ln.Addr().String()

	// Deterministic outage: requests 3..22 to the trainer are dropped
	// on the floor — a 20-request partition, same schedule every run.
	chaos := repro.NewFaultInjector(1, repro.FaultRule{Kind: repro.FaultDrop, P: 1, After: 3, Until: 23})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	replica, _, err := repro.BootstrapScorer(ctx, trainerURL, 1)
	if err != nil {
		log.Fatal(err)
	}
	replicaPS := repro.NewPredictionServer(replica, repro.ServerConfig{})
	defer replicaPS.Close()

	var evMu sync.Mutex
	var breakerEvents []string
	follower := repro.NewFollower(trainerURL, replica, repro.FollowConfig{
		Interval:         10 * time.Millisecond,
		Transport:        chaos.RoundTripper(nil),
		BackoffBase:      5 * time.Millisecond,
		BackoffMax:       50 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
		Drainer:          replicaPS,
		// The callback must not block: it runs inside the breaker's
		// transition path.
		OnStateChange: func(from, to repro.BreakerState) {
			evMu.Lock()
			breakerEvents = append(breakerEvents, fmt.Sprintf("%s -> %s", from, to))
			evMu.Unlock()
		},
	})
	replicaPS.SetStalenessSource(follower)
	go follower.Run(ctx)

	// Reads flow through the whole outage.
	var reads atomic.Int64
	readStop := make(chan struct{})
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		row := []float64{5, 5, 5}
		for {
			select {
			case <-readStop:
				return
			default:
				replica.Predict(row)
				reads.Add(1)
			}
		}
	}()

	// Wait for the partition to trip the breaker, and report what a
	// degraded replica looks like from the outside.
	deadline := time.After(10 * time.Second)
	for follower.State() == repro.BreakerClosed {
		select {
		case <-deadline:
			log.Fatal("breaker never opened")
		case <-time.After(5 * time.Millisecond):
		}
	}
	lag, degraded := follower.Staleness()
	health := replicaPS.Health()
	fmt.Printf("partition: breaker %s, degraded=%v (staleness %v), /healthz live=%v ready=%v degraded=%v — still serving\n",
		follower.State(), degraded, lag.Round(time.Millisecond), health.Live, health.Ready, health.Degraded)

	// The outage window closes after 20 dropped requests; the half-open
	// probe readmits the trainer and the breaker closes again.
	deadline = time.After(20 * time.Second)
	for follower.State() != repro.BreakerClosed {
		select {
		case <-deadline:
			log.Fatal("breaker never closed after the outage window")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(readStop)
	readWG.Wait()
	st := follower.Stats()
	evMu.Lock()
	first, last := breakerEvents[0], breakerEvents[len(breakerEvents)-1]
	n := len(breakerEvents)
	evMu.Unlock()
	fmt.Printf("healed: %d breaker transitions (%s ... %s), circuit opened %d times; %d reads served across the outage, %d fetch errors absorbed (%d retries)\n",
		n, first, last, st.BreakerOpens, reads.Load(), st.Errors(), st.Retries)

	deltaFollowDemo()
}

// deltaFollowDemo shows the ?since= protocol on the wire: a replica
// seeded with its bootstrap envelope bytes follows the trainer through
// several structural advances installing delta chains instead of full
// envelopes, and after each converged install the demo fetches both
// wire formats for that version step — the delta the follower actually
// transferred vs the full envelope a -no-delta follower would have
// refetched. The reconstruction is CRC-pinned end to end, so the
// delta-converged replica's checkpoint is byte-identical to the
// trainer's envelope. (How much a delta saves depends on how much
// learning happened between the versions it connects: a young VFDT
// churns sufficient statistics in every leaf between splits, so the
// per-step saving here is real but modest; a localized structural
// change in a large model is ~2 KB against a ~480 KB envelope — see
// BenchmarkDeltaBytesOp.)
func deltaFollowDemo() {
	gen := repro.NewSEA(120_000, 0.1, 11)
	trainer := repro.MustServe("VFDT (MC)", gen.Schema(),
		repro.WithServeModelOptions(repro.WithSeed(11)))
	for i := 0; i < 200; i++ {
		b, err := nextBatch(gen, 100)
		if err != nil {
			break
		}
		trainer.Learn(b)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	trainerPS := repro.NewPredictionServer(trainer, repro.ServerConfig{})
	defer trainerPS.Close()
	hs := &http.Server{Handler: trainerPS.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	trainerURL := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The raw bootstrap keeps the envelope bytes: seeding them into the
	// follower is what lets its very first poll negotiate a delta chain.
	replica, v0, raw0, err := repro.BootstrapScorerRaw(ctx, nil, trainerURL, 1)
	if err != nil {
		log.Fatal(err)
	}
	installs := make(chan uint64, 16)
	follower := repro.NewFollower(trainerURL, replica, repro.FollowConfig{
		Interval:  5 * time.Millisecond,
		Wait:      2 * time.Second,
		OnInstall: func(v uint64) { installs <- v },
	})
	follower.SeedInstalled(v0, raw0)
	go follower.Run(ctx)

	// Three structural advances, each converged before the next, so each
	// poll ships exactly the diff for one version step. After each
	// install, fetch that step in both wire formats for the comparison.
	get := func(url string) ([]byte, http.Header) {
		resp, err := http.Get(url)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return body, resp.Header
	}
	cur := v0
	var deltaWire, fullWire int
	var fullBytes []byte
	for step := 0; step < 3; step++ {
		prev := cur
		for i := 0; i < 600; i++ {
			b, err := nextBatch(gen, 100)
			if err != nil {
				break
			}
			trainer.Learn(b)
			if v, _ := trainer.StructureVersion(); v != cur {
				break
			}
		}
		next, _ := trainer.StructureVersion()
		if next == cur {
			break // stream ran dry before another split
		}
		deadline := time.After(10 * time.Second)
		for cur != next {
			select {
			case cur = <-installs:
			case <-deadline:
				log.Fatal("replica never installed the advance")
			}
		}
		fullBytes, _ = get(trainerURL + "/v1/envelope")
		chainBytes, chdr := get(fmt.Sprintf("%s/v1/envelope?since=%d", trainerURL, prev))
		if chdr.Get("Content-Type") != "application/x-repro-delta" {
			log.Fatalf("?since=%d did not answer with a delta chain", prev)
		}
		deltaWire += len(chainBytes)
		fullWire += len(fullBytes)
		fmt.Printf("  step %d→%d: delta %d bytes vs full %d bytes (%.0f%% of a full refetch)\n",
			prev, cur, len(chainBytes), len(fullBytes),
			100*float64(len(chainBytes))/float64(len(fullBytes)))
	}

	st := follower.Stats()
	fmt.Printf("delta follow: %d installs, %d via delta chain (%d fallbacks); %d bytes on the wire vs %d a -no-delta follower would have fetched\n",
		st.Installs, st.DeltaInstalls, st.DeltaFallbacks, deltaWire, fullWire)

	// Byte-identical convergence: the replica's own checkpoint is the
	// trainer's envelope, bit for bit.
	var ckpt bytes.Buffer
	if err := replica.Checkpoint(&ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica checkpoint == trainer envelope: %v\n", bytes.Equal(ckpt.Bytes(), fullBytes))
}

// nextBatch pulls up to n instances into one batch.
func nextBatch(s repro.Stream, n int) (repro.Batch, error) {
	var b repro.Batch
	for i := 0; i < n; i++ {
		inst, err := s.Next()
		if err != nil {
			if i > 0 {
				return b, nil
			}
			return b, err
		}
		b.X = append(b.X, inst.X)
		b.Y = append(b.Y, inst.Y)
	}
	return b, nil
}
