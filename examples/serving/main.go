// Serving: lock-free prediction during online learning. A SnapshotScorer
// publishes an immutable model snapshot through an atomic pointer after
// every few Learn calls, so read traffic (Predict/Proba and the batch
// APIs) is wait-free and never stalls behind training — the deployment
// mode the paper targets, an interpretable model that keeps learning
// while it serves. The program trains a DMT on a drifting SEA stream
// while reader goroutines hammer the scorer, then contrasts a
// hash-sharded deployment.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"repro"
)

func main() {
	gen := repro.NewSEA(60_000, 0.1, 42)

	// Registry-driven serving: build the model by name and wrap it in
	// the lock-free snapshot scorer in one call. The publish cadence
	// trades staleness for clone cost: with 4, reads serve a state at
	// most 3 batches old.
	scorer, err := repro.Serve("DMT", gen.Schema(),
		repro.WithServeModelOptions(repro.WithSeed(42)),
		repro.WithPublishEvery(4))
	if err != nil {
		log.Fatal(err)
	}

	// Wait-free readers: no read ever blocks, even mid-Learn.
	var served atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rows := [][]float64{
				{0.2 * float64(r), 0.5, 0.5},
				{0.9, 0.1, 0.4},
			}
			var preds []int
			proba := make([]float64, gen.Schema().NumClasses)
			for {
				select {
				case <-stop:
					return
				default:
				}
				preds = scorer.PredictBatch(rows, preds) // one consistent snapshot
				proba = scorer.Proba(rows[0], proba)
				served.Add(int64(len(rows)))
			}
		}(r)
	}

	// The learning loop: train on the live stream through the scorer.
	trained := 0
	for {
		batch, err := nextBatch(gen, 100)
		if err != nil {
			break
		}
		scorer.Learn(batch)
		trained += batch.Len()
	}
	close(stop)
	wg.Wait()

	comp := scorer.Complexity()
	fmt.Printf("trained on %d instances while serving %d wait-free predictions\n",
		trained, served.Load())
	fmt.Printf("deployed snapshot: %d inner nodes, %d leaves, depth %d\n",
		comp.Inner, comp.Leaves, comp.Depth)

	// Sharded serving: rows hash across independent replicas, so both
	// learning and serving scale across cores (each replica sees 1/N of
	// the stream — a throughput/accuracy trade-off).
	sharded := repro.MustServe("DMT", gen.Schema(),
		repro.WithServeModelOptions(repro.WithSeed(42)),
		repro.WithShards(4))
	gen2 := repro.NewSEA(60_000, 0.1, 43)
	for {
		batch, err := nextBatch(gen2, 100)
		if err != nil {
			break
		}
		sharded.Learn(batch)
	}
	fmt.Printf("sharded deployment: %d total leaves across 4 replicas\n",
		sharded.Complexity().Leaves)
}

// nextBatch pulls up to n instances into one batch.
func nextBatch(s repro.Stream, n int) (repro.Batch, error) {
	var b repro.Batch
	for i := 0; i < n; i++ {
		inst, err := s.Next()
		if err != nil {
			if i > 0 {
				return b, nil
			}
			return b, err
		}
		b.X = append(b.X, inst.X)
		b.Y = append(b.Y, inst.Y)
	}
	return b, nil
}
