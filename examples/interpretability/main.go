// Interpretability: demonstrate the properties the paper argues make the
// DMT inherently interpretable (Sections I-A and III): (1) the deployed
// model is small enough to print, (2) every structural change is linked
// to a measured loss gain past an AIC confidence test, and (3) leaf models
// expose local feature weights for subgroup-level explanations. The
// example also verifies Property 2 empirically: when a concept simplifies
// back to linear, the DMT prunes itself back toward a single model.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

// twoPhaseStream emits a piecewise concept first (XOR-ish on x0, x1:
// needs splits), then a plain linear concept (no splits needed).
type twoPhaseStream struct {
	rng     *rand.Rand
	seed    int64
	pos     int
	samples int
}

func (s *twoPhaseStream) Schema() repro.Schema {
	return repro.Schema{NumFeatures: 4, NumClasses: 2, Name: "TwoPhase",
		FeatureNames: []string{"x0", "x1", "x2", "x3"}}
}

func (s *twoPhaseStream) Len() int { return s.samples }

func (s *twoPhaseStream) Reset() {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.pos = 0
}

func (s *twoPhaseStream) Next() (repro.Instance, error) {
	if s.pos >= s.samples {
		return repro.Instance{}, repro.ErrEndOfStream
	}
	x := []float64{s.rng.Float64(), s.rng.Float64(), s.rng.Float64(), s.rng.Float64()}
	var y int
	if s.pos < s.samples/2 {
		// Phase 1: piecewise concept — left/right of x0=0.5 have opposite
		// linear rules. A single linear model cannot represent it.
		if x[0] <= 0.5 {
			if x[1] > 0.5 {
				y = 1
			}
		} else {
			if x[1] <= 0.5 {
				y = 1
			}
		}
	} else {
		// Phase 2: plain linear concept.
		if 2*x[1]+x[2]-x[3] > 1 {
			y = 1
		}
	}
	if s.rng.Float64() < 0.05 {
		y = 1 - y
	}
	s.pos++
	return repro.Instance{X: x, Y: y}, nil
}

func main() {
	gen := &twoPhaseStream{seed: 11, samples: 160_000}
	gen.Reset()
	dmt := repro.MustNew("DMT", gen.Schema(), repro.WithSeed(11)).(*repro.DMT)

	res, err := repro.Prequential(dmt, gen, repro.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 1) Complexity over the two phases: grows for the piecewise concept,
	//    shrinks again once the concept turns linear (Property 2, model
	//    minimality — the split no longer reduces the loss, so it goes).
	iters := len(res.Iters)
	checkpoints := []int{iters / 4, iters/2 - 1, 3 * iters / 4, iters - 1}
	fmt.Println("Model size over the concept change (phase flips at 50%):")
	for _, cp := range checkpoints {
		fmt.Printf("  at %3.0f%%: splits=%.0f params=%.0f (F1 window %.3f)\n",
			100*float64(cp)/float64(iters), res.Iters[cp].Splits, res.Iters[cp].Params,
			windowMean(res, cp, 20))
	}

	// 2) The change log answers "why did you change?" — each entry cites
	//    the loss gain that passed the AIC test of eq. (11).
	fmt.Println("\nStructural change log:")
	for _, ev := range dmt.Changes() {
		fmt.Printf("  step %4d: %-7s depth=%d on %s  gain=%.1f (AIC threshold %.1f)\n",
			ev.Step, ev.Kind, ev.Depth, ev.Test(gen.Schema()),
			ev.Gain, ev.AICThreshold)
	}

	// 3) The final deployed model is small enough to print whole.
	fmt.Println("\nFinal deployed model:")
	fmt.Print(dmt.Describe())

	// 4) Local explanations: feature weights of the leaf serving a point.
	probe := []float64{0.3, 0.8, 0.5, 0.5}
	fmt.Printf("\nLocal explanation at %v (class-1 weights of the serving leaf):\n", probe)
	for j, w := range dmt.LeafWeights(probe, 1) {
		fmt.Printf("  %s: %+6.3f\n", gen.Schema().FeatureName(j), w)
	}
}

func windowMean(res repro.EvalResult, at, w int) float64 {
	lo := at - w
	if lo < 0 {
		lo = 0
	}
	var s float64
	for _, it := range res.Iters[lo : at+1] {
		s += it.F1
	}
	return s / float64(at+1-lo)
}
