// Model racing under drift: repro.Race trains several learners on the
// same stream and serves every prediction from the arm currently
// winning the windowed prequential race. This demo drives a racer
// through a recurring concept switch — a linearly separable hyperplane
// regime (the GLM's home turf) alternating with a multi-modal
// Gaussian-cluster regime (tree territory) — and prints the leader
// switches next to the planted drift positions: the racer should hand
// traffic to a different arm family as each regime arrives.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		samples  = 24_000
		segments = 4
		seed     = 42
	)

	build := func() *repro.ConceptSwitch {
		linear := repro.NewHyperplane(samples, 5, 0.02, seed+1)
		clusters := repro.NewClusterStream(repro.ClusterConfig{
			Name: "clusters", Samples: samples, Features: 5, Classes: 2,
			ClustersPerClass: 3, Std: 0.07, Seed: seed + 2,
		})
		return repro.NewRecurringSwitch(samples, segments, seed, linear, clusters)
	}

	stream := build()
	racer, err := repro.Race(stream.Schema(), repro.Arms("glm", "vfdt", "nb"),
		repro.WithRaceSeed(seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("racing %s over %d rows (planted drifts at %v)\n\n",
		racer.Name(), samples, stream.DriftPositions())

	// Feed the stream batch by batch, reporting each leader change as
	// it happens.
	seen := 0
	for {
		b, err := repro.NextBatch(stream, 64)
		if errors.Is(err, repro.ErrEndOfStream) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		racer.Learn(b)
		st := racer.RaceStatus()
		for _, ev := range st.Events[seen:] {
			mark := ""
			if ev.Drift {
				mark = "  <- drift re-race"
			}
			fmt.Printf("row %6d: leader %s -> %s%s\n", ev.Row, ev.FromModel, ev.ToModel, mark)
		}
		seen = len(st.Events)
	}

	st := racer.RaceStatus()
	fmt.Printf("\nfinal leader: %s after %d rows, %d re-races, %d leader changes (%d drift-triggered)\n",
		st.Leader, st.Rows, st.ReRaces, st.LeaderChanges, st.DriftChanges)
	fmt.Println("\nfinal scoreboard (windowed prequential error per arm):")
	for _, a := range st.Arms {
		lead := " "
		if a.Leader {
			lead = "*"
		}
		fmt.Printf("  %s %-12s err=%.3f logloss=%.3f window=%d/%d drifts=%d\n",
			lead, a.Model, a.ErrorRate, a.LogLoss, a.WindowLen, st.Rows, a.Drifts)
	}
}
