package repro

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// collectBatches materialises n batches of the given size from a stream.
func collectBatches(t *testing.T, s Stream, n, size int) []Batch {
	t.Helper()
	var out []Batch
	for i := 0; i < n; i++ {
		var b Batch
		for j := 0; j < size; j++ {
			inst, err := s.Next()
			if err != nil {
				t.Fatalf("stream ended early: %v", err)
			}
			b.X = append(b.X, inst.X)
			b.Y = append(b.Y, inst.Y)
		}
		out = append(out, b)
	}
	return out
}

// sameProba reports bit-exact equality of two probability vectors.
func sameProba(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if a[k] != b[k] && !(math.IsNaN(a[k]) && math.IsNaN(b[k])) {
			return false
		}
	}
	return true
}

// assertByteIdenticalContinue trains control and subject on the first
// half of the batches, round-trips subject through Save/Load, continues
// both on the second half, and requires bit-exact predictions,
// probabilities and complexity — the core acceptance criterion: a
// save → load → continue run must be indistinguishable from one that
// never stopped.
func assertByteIdenticalContinue(t *testing.T, name string, schema Schema, batches []Batch) {
	t.Helper()
	control := MustNew(name, schema, WithSeed(7))
	subject := MustNew(name, schema, WithSeed(7))
	half := len(batches) / 2
	for i := 0; i < half; i++ {
		control.Learn(batches[i])
		subject.Learn(batches[i])
	}
	var buf bytes.Buffer
	if err := Save(&buf, subject); err != nil {
		t.Fatalf("Save(%s): %v", name, err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	if restored.Name() != subject.Name() {
		t.Fatalf("restored model named %q, want %q", restored.Name(), subject.Name())
	}
	for i := half; i < len(batches); i++ {
		control.Learn(batches[i])
		restored.Learn(batches[i])
	}
	if control.Complexity() != restored.Complexity() {
		t.Fatalf("%s: complexity diverged after resume: %+v vs %+v", name, control.Complexity(), restored.Complexity())
	}
	cp, cOK := control.(ProbabilisticClassifier)
	rp, rOK := restored.(ProbabilisticClassifier)
	if cOK != rOK {
		t.Fatalf("%s: probabilistic interface lost in round trip", name)
	}
	for bi, b := range batches {
		for ri, x := range b.X {
			if control.Predict(x) != restored.Predict(x) {
				t.Fatalf("%s: prediction diverged after resume (batch %d row %d)", name, bi, ri)
			}
			if cOK && !sameProba(cp.Proba(x, nil), rp.Proba(x, nil)) {
				t.Fatalf("%s: probabilities diverged after resume (batch %d row %d)", name, bi, ri)
			}
		}
	}
}

// TestCheckpointRoundTripAllModels is the registry-wide acceptance
// test: every registered model reconstructs from its envelope alone and
// continues byte-identically.
func TestCheckpointRoundTripAllModels(t *testing.T) {
	gen := NewSEA(200_000, 0.1, 42)
	schema := gen.Schema()
	batches := collectBatches(t, gen, 40, 64)
	for _, name := range Models() {
		name := name
		t.Run(name, func(t *testing.T) {
			assertByteIdenticalContinue(t, name, schema, batches)
		})
	}
}

// TestCheckpointRoundTripMulticlass covers the multinomial (Softmax)
// simple models and multiclass Naive Bayes paths on a 4-class stream.
func TestCheckpointRoundTripMulticlass(t *testing.T) {
	gen := NewClusterStream(ClusterConfig{
		Name: "ckpt4", Samples: 200_000, Features: 5, Classes: 4,
		Priors: MajorityPriors(4, 0.4), Seed: 11,
	})
	schema := gen.Schema()
	batches := collectBatches(t, gen, 30, 64)
	for _, name := range []string{"DMT", "GLM", "Naive Bayes", "VFDT (NBA)", "FIMT-DD", "Forest Ens."} {
		name := name
		t.Run(name, func(t *testing.T) {
			assertByteIdenticalContinue(t, name, schema, batches)
		})
	}
}

// TestLoadRejectsDamagedEnvelopes covers the corruption matrix:
// truncation at every boundary, payload bit-flips (checksum), and
// garbage input.
func TestLoadRejectsDamagedEnvelopes(t *testing.T) {
	gen := NewSEA(50_000, 0.1, 42)
	clf := MustNew("DMT", gen.Schema(), WithSeed(3))
	batches := collectBatches(t, gen, 10, 64)
	for _, b := range batches {
		clf.Learn(b)
	}
	var buf bytes.Buffer
	if err := Save(&buf, clf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Load(bytes.NewReader([]byte("garbage that is clearly not an envelope"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncation at every prefix boundary class: inside the magic,
	// inside the header, inside the payload.
	for _, cut := range []int{3, 10, len(raw) / 2, len(raw) - 1} {
		if cut >= len(raw) {
			continue
		}
		if _, err := Load(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncated envelope (%d of %d bytes) accepted", cut, len(raw))
		}
	}
	// A flipped payload byte must fail the checksum.
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)-10] ^= 0x40
	if _, err := Load(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt payload accepted")
	}
}

// TestLoadDMTReadsEnvelopes checks the deprecated shim reads the new
// format (the legacy v1 path is covered in internal/core).
func TestLoadDMTReadsEnvelopes(t *testing.T) {
	gen := NewSEA(50_000, 0.1, 42)
	clf := MustNew("DMT", gen.Schema(), WithSeed(3)).(*DMT)
	for _, b := range collectBatches(t, gen, 5, 64) {
		clf.Learn(b)
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil { // deprecated shim writes an envelope
		t.Fatal(err)
	}
	loaded, err := LoadDMT(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Complexity() != clf.Complexity() {
		t.Fatal("complexity changed through the shim")
	}
	// The unified Load resolves the same envelope without naming a type.
	generic, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := generic.(*DMT); !ok {
		t.Fatalf("Load reconstructed %T, want *DMT", generic)
	}
	// A non-DMT envelope must be refused by the DMT-typed shim.
	var other bytes.Buffer
	nb := MustNew("Naive Bayes", gen.Schema())
	nb.Learn(Batch{X: [][]float64{{0.1, 0.2, 0.3}}, Y: []int{0}})
	if err := Save(&other, nb); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDMT(bytes.NewReader(other.Bytes())); err == nil {
		t.Fatal("LoadDMT accepted a Naive Bayes envelope")
	}
}

// TestScorerCheckpointRestore verifies the serving layer round trip for
// all three scorer implementations: a restored scorer serves and keeps
// learning byte-identically to the one that was checkpointed.
func TestScorerCheckpointRestore(t *testing.T) {
	gen := NewSEA(200_000, 0.1, 42)
	schema := gen.Schema()
	batches := collectBatches(t, gen, 30, 64)
	cases := []struct {
		name string
		opts []ServeOption
	}{
		{"snapshot", nil},
		{"locked", []ServeOption{WithLockedServing()}},
		{"sharded", []ServeOption{WithShards(3)}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mk := func() Scorer {
				return MustServe("DMT", schema, append([]ServeOption{WithServeModelOptions(WithSeed(5))}, tc.opts...)...)
			}
			orig := mk()
			for i := 0; i < 15; i++ {
				orig.Learn(batches[i])
			}
			var buf bytes.Buffer
			if err := orig.Checkpoint(&buf); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			restored := mk()
			if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			for i := 15; i < 30; i++ {
				orig.Learn(batches[i])
				restored.Learn(batches[i])
			}
			if orig.Complexity() != restored.Complexity() {
				t.Fatalf("complexity diverged: %+v vs %+v", orig.Complexity(), restored.Complexity())
			}
			var pa, pb []int
			for _, b := range batches {
				pa = orig.PredictBatch(b.X, pa)
				pb = restored.PredictBatch(b.X, pb)
				for i := range pa {
					if pa[i] != pb[i] {
						t.Fatal("restored scorer diverged from original")
					}
				}
			}
		})
	}
}

// TestRunnerResume simulates a kill after part of a grid completed and
// checks the resumed run reproduces the uninterrupted result matrix:
// loaded cells verbatim (every field, timings included) and re-run
// cells byte-identically in all deterministic metrics.
func TestRunnerResume(t *testing.T) {
	dir := t.TempDir()
	cells := func() []Cell {
		var out []Cell
		for _, ds := range []string{"SEA", "Hyperplane"} {
			entry, err := DatasetByName(ds)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range []string{"DMT", "GLM"} {
				out = append(out, Cell{Dataset: entry, Model: m, Seed: CellSeed(42, ds, m)})
			}
		}
		return out
	}

	base := Runner{Workers: 2, Scale: 0.004, MinBatchSize: 32}

	// The uninterrupted reference run.
	uninterrupted, err := base.Run(context.Background(), cells())
	if err != nil {
		t.Fatal(err)
	}

	// Simulated kill: only half the cells complete, checkpointed.
	killed := base
	killed.CheckpointDir = dir
	if _, err := killed.Run(context.Background(), cells()[:2]); err != nil {
		t.Fatal(err)
	}

	// Resume the full grid: the two completed cells load from disk, the
	// other two run fresh.
	resumed := base
	resumed.CheckpointDir = dir
	resumed.Resume = true
	var progress bytes.Buffer
	resumed.Progress = &progress
	got, err := resumed.Run(context.Background(), cells())
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(progress.Bytes(), []byte("resumed:")); n != 2 {
		t.Fatalf("expected 2 resumed cells, progress log shows %d:\n%s", n, progress.String())
	}

	for ds, models := range uninterrupted.Results {
		for m, want := range models {
			have, ok := got.Results[ds][m]
			if !ok {
				t.Fatalf("cell %s/%s missing after resume", ds, m)
			}
			if len(have.Iters) != len(want.Iters) {
				t.Fatalf("cell %s/%s: %d iters after resume, want %d", ds, m, len(have.Iters), len(want.Iters))
			}
			for i := range want.Iters {
				a, b := want.Iters[i], have.Iters[i]
				// Seconds is wall clock — the only field that may differ
				// between two executions of the same deterministic cell.
				a.Seconds, b.Seconds = 0, 0
				if a != b {
					t.Fatalf("cell %s/%s iter %d diverged after resume: %+v vs %+v", ds, m, i, want.Iters[i], have.Iters[i])
				}
			}
		}
	}

	// Stale checkpoints from a different configuration must be ignored.
	stale := base
	stale.Scale = 0.008
	stale.CheckpointDir = dir
	stale.Resume = true
	var staleProgress bytes.Buffer
	stale.Progress = &staleProgress
	if _, err := stale.Run(context.Background(), cells()[:1]); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(staleProgress.Bytes(), []byte("resumed:")) {
		t.Fatalf("stale checkpoint (different scale) was resumed:\n%s", staleProgress.String())
	}

	// Cell files must survive inspection as real files (atomic rename).
	matches, err := filepath.Glob(filepath.Join(dir, "*.cell"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no cell files written: %v", err)
	}
	for _, f := range matches {
		if info, err := os.Stat(f); err != nil || info.Size() == 0 {
			t.Fatalf("cell file %s unreadable or empty", f)
		}
	}
}
