package repro

// One benchmark per table and figure of the paper's evaluation (see
// DESIGN.md §5, experiments E1-E9). The expensive prequential suite runs
// once (shared across table benchmarks, outside the timed region at the
// paper's 0.1% batch fraction) on streams scaled by REPRO_BENCH_SCALE
// (default 0.002, i.e. every stream floored to ~2000 instances); each
// benchmark then regenerates and prints its table or figure. Absolute
// numbers depend on the scale — the shape (who wins, who stays shallow)
// is what these reproduce; run cmd/dmtbench -scale 1 for full-size runs.
//
// The Benchmark*Op benchmarks at the bottom are conventional per-op
// micro-benchmarks of the hot paths.

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/attrobs"
	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/ensemble"
	"repro/internal/eval"
	"repro/internal/glm"
	"repro/internal/hoeffding"
	"repro/internal/split"
	"repro/internal/stream"
	"repro/internal/synth"
)

func benchScale() float64 {
	if s := os.Getenv("REPRO_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 && v <= 1 {
			return v
		}
	}
	return 0.1
}

var (
	suiteOnce sync.Once
	suiteRes  *eval.SuiteResult
	suiteErr  error
)

// sharedSuite runs the full 8-model x 13-stream prequential suite once.
func sharedSuite() (*eval.SuiteResult, error) {
	suiteOnce.Do(func() {
		suiteRes, suiteErr = eval.Suite{
			Scale: benchScale(),
			Seed:  42,
		}.Run()
	})
	return suiteRes, suiteErr
}

func printOnce(b *testing.B, out string) {
	if b.N >= 1 {
		fmt.Println(out)
	}
}

// BenchmarkTable1DataSets regenerates Table I (E1).
func BenchmarkTable1DataSets(b *testing.B) {
	res, err := sharedSuite()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = res.Table1()
	}
	b.StopTimer()
	printOnce(b, out)
}

// BenchmarkTable2F1 regenerates Table II (E2).
func BenchmarkTable2F1(b *testing.B) {
	res, err := sharedSuite()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = res.Table2()
	}
	b.StopTimer()
	printOnce(b, out)
}

// BenchmarkTable3Splits regenerates Table III (E3).
func BenchmarkTable3Splits(b *testing.B) {
	res, err := sharedSuite()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = res.Table3()
	}
	b.StopTimer()
	printOnce(b, out)
}

// BenchmarkTable4Params regenerates Table IV (E4).
func BenchmarkTable4Params(b *testing.B) {
	res, err := sharedSuite()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = res.Table4()
	}
	b.StopTimer()
	printOnce(b, out)
}

// BenchmarkTable5Time regenerates Table V (E5).
func BenchmarkTable5Time(b *testing.B) {
	res, err := sharedSuite()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = res.Table5()
	}
	b.StopTimer()
	printOnce(b, out)
}

// BenchmarkTable6Summary regenerates Table VI (E6).
func BenchmarkTable6Summary(b *testing.B) {
	res, err := sharedSuite()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = res.Table6()
	}
	b.StopTimer()
	printOnce(b, out)
}

// BenchmarkFigure3DriftSeries regenerates the Figure 3 panels (E7).
func BenchmarkFigure3DriftSeries(b *testing.B) {
	res, err := sharedSuite()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = res.Figure3(20)
	}
	b.StopTimer()
	printOnce(b, out)
}

// BenchmarkFigure4Scatter regenerates Figure 4 (E8).
func BenchmarkFigure4Scatter(b *testing.B) {
	res, err := sharedSuite()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = res.Figure4()
	}
	b.StopTimer()
	printOnce(b, out)
}

var (
	ablationOnce sync.Once
	ablationOut  string
	ablationErr  error
)

// BenchmarkAblationStudy runs the DMT ablation study (E9).
func BenchmarkAblationStudy(b *testing.B) {
	ablationOnce.Do(func() {
		ablationOut, ablationErr = eval.RunAblation(benchScale(), 42, nil)
	})
	if ablationErr != nil {
		b.Fatal(ablationErr)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = len(ablationOut)
	}
	b.StopTimer()
	printOnce(b, ablationOut)
}

// --- Per-operation micro-benchmarks of the hot paths. ---

func seaBatches(n, size int) []stream.Batch {
	gen := synth.NewSEA(n*size, 0.1, 1)
	out := make([]stream.Batch, n)
	for i := range out {
		b, err := stream.NextBatch(gen, size)
		if err != nil {
			panic(err)
		}
		out[i] = b
	}
	return out
}

// BenchmarkDMTLearnBatchOp measures one DMT prequential training step on
// a 100-row batch (SEA schema).
func BenchmarkDMTLearnBatchOp(b *testing.B) {
	batches := seaBatches(256, 100)
	tree := core.New(core.Config{Seed: 1}, synth.NewSEA(100, 0.1, 1).Schema())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Learn(batches[i&255])
	}
}

// BenchmarkDMTPredictOp measures one DMT prediction after training.
func BenchmarkDMTPredictOp(b *testing.B) {
	batches := seaBatches(256, 100)
	tree := core.New(core.Config{Seed: 1}, synth.NewSEA(100, 0.1, 1).Schema())
	for _, batch := range batches {
		tree.Learn(batch)
	}
	x := batches[0].X[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Predict(x)
	}
}

// BenchmarkADWINAddOp measures one ADWIN update.
func BenchmarkADWINAddOp(b *testing.B) {
	a := drift.NewADWIN(0.002)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Add(float64(i&1) * 0.5)
	}
}

// BenchmarkGLMRowLossGradOp measures one logit loss+gradient evaluation.
func BenchmarkGLMRowLossGradOp(b *testing.B) {
	m := glm.New(50, 2, nil)
	x := make([]float64, 50)
	for j := range x {
		x[j] = 0.5
	}
	grad := make([]float64, m.NumWeights())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.RowLossGrad(x, i&1, grad)
	}
}

// linearBenchBatches builds count batches of size rows over m uniform
// features labelled by a fixed linear rule — a steady-state workload (the
// DMT does not split on a linear concept, Property 2), so the benchmarks
// below measure the per-batch hot path rather than structural changes.
func linearBenchBatches(m, count, size int, seed int64) []stream.Batch {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, m)
	for j := range w {
		w[j] = rng.NormFloat64()
	}
	out := make([]stream.Batch, count)
	for k := range out {
		X := make([][]float64, size)
		Y := make([]int, size)
		for i := 0; i < size; i++ {
			x := make([]float64, m)
			s := -0.5 * float64(m) * 0.5
			for j := range x {
				x[j] = rng.Float64()
				s += w[j] * x[j]
			}
			X[i] = x
			if s > 0 {
				Y[i] = 1
			}
		}
		out[k] = stream.Batch{X: X, Y: Y}
	}
	return out
}

// BenchmarkLearnOp measures one steady-state DMT Learn call (100-row
// batch) across feature widths. This is the acceptance benchmark of the
// candidate-index optimisation; `make bench` records it in BENCH_PR2.json.
func BenchmarkLearnOp(b *testing.B) {
	for _, m := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			batches := linearBenchBatches(m, 64, 100, 7)
			tree := core.New(core.Config{Seed: 1}, stream.Schema{NumFeatures: m, NumClasses: 2, Name: "bench"})
			for _, bt := range batches {
				tree.Learn(bt) // warm up: fill the candidate pool, size buffers
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tree.Learn(batches[i&63])
			}
		})
	}
}

// BenchmarkVFDTLearnOneOp measures one Hoeffding tree instance update.
func BenchmarkVFDTLearnOneOp(b *testing.B) {
	gen := synth.NewSEA(1_000_000, 0.1, 2)
	tree := hoeffding.New(hoeffding.Config{Seed: 2}, gen.Schema())
	insts := make([]stream.Instance, 4096)
	for i := range insts {
		insts[i], _ = gen.Next()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := insts[i&4095]
		tree.LearnOne(inst.X, inst.Y, 1)
	}
}

// BenchmarkHoeffdingLearnOp measures one warmed VFDT LearnOne call across
// feature widths (the ensemble weak-learner hot path). `make bench`
// records it in BENCH_PR3.json.
func BenchmarkHoeffdingLearnOp(b *testing.B) {
	for _, m := range []int{10, 50} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			batches := linearBenchBatches(m, 64, 100, 11)
			tree := hoeffding.New(hoeffding.Config{Seed: 3},
				stream.Schema{NumFeatures: m, NumClasses: 2, Name: "bench"})
			for _, bt := range batches {
				tree.Learn(bt) // warm up: grow the tree, size buffers
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bt := batches[i&63]
				r := i % len(bt.X)
				tree.LearnOne(bt.X[r], bt.Y[r], 1)
			}
		})
	}
}

// BenchmarkHoeffdingPredictOp measures one warmed VFDT prediction.
func BenchmarkHoeffdingPredictOp(b *testing.B) {
	batches := linearBenchBatches(10, 64, 100, 11)
	tree := hoeffding.New(hoeffding.Config{Seed: 3},
		stream.Schema{NumFeatures: 10, NumClasses: 2, Name: "bench"})
	for _, bt := range batches {
		tree.Learn(bt)
	}
	x := batches[0].X[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Predict(x)
	}
}

// BenchmarkScorerReadOp measures one Predict under an active writer: a
// background goroutine trains the same scorer continuously, so the
// locked variant pays the RWMutex write-lock hold of every Learn while
// the snapshot variant reads the published snapshot wait-free. This is
// the acceptance benchmark of the lock-free serving rework; `make
// bench` records it in BENCH_PR4.json.
func BenchmarkScorerReadOp(b *testing.B) {
	schema := stream.Schema{NumFeatures: 50, NumClasses: 2, Name: "bench"}
	for _, mode := range []string{"locked", "snapshot"} {
		b.Run(mode, func(b *testing.B) {
			batches := linearBenchBatches(50, 64, 200, 17)
			var s Scorer
			if mode == "locked" {
				s = NewScorer(MustNew("DMT", schema, WithSeed(1)))
			} else {
				s = MustServe("DMT", schema, WithServeModelOptions(WithSeed(1)))
			}
			for _, bt := range batches {
				s.Learn(bt)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					s.Learn(batches[i&63])
				}
			}()
			x := batches[0].X[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Predict(x)
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// BenchmarkSnapshotPublishOp measures one snapshot clone+publish of a
// warmed DMT — the cost WithPublishEvery amortises.
func BenchmarkSnapshotPublishOp(b *testing.B) {
	schema := stream.Schema{NumFeatures: 50, NumClasses: 2, Name: "bench"}
	batches := linearBenchBatches(50, 64, 200, 17)
	s, err := NewSnapshotScorer(MustNew("DMT", schema, WithSeed(1)), 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, bt := range batches {
		s.Learn(bt)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Publish()
	}
}

// BenchmarkFIMTDDLearnOp measures one steady-state FIMT-DD Learn call on
// a 100-row batch (depth-capped, prune-suppressed so the measurement
// stays on the per-instance hot path: routing, E-BST updates, RowStep).
func BenchmarkFIMTDDLearnOp(b *testing.B) {
	batches := seaBatches(64, 100)
	tree := NewFIMTDD(FIMTDDConfig{Seed: 1, MaxDepth: 3, PHLambda: 1e12},
		synth.NewSEA(100, 0.1, 1).Schema())
	// Several passes saturate the depth-capped tree and fill the leaf
	// E-BST indices, so the timed region measures the steady state.
	for pass := 0; pass < 30; pass++ {
		for _, bt := range batches {
			tree.Learn(bt)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Learn(batches[i&63])
	}
}

// BenchmarkGLMStepOp measures one mean-gradient Step on a 100-row batch
// for the two GLM variants (the DMT/FIMT-DD leaf-model workhorses).
func BenchmarkGLMStepOp(b *testing.B) {
	for _, tc := range []struct {
		name string
		c    int
	}{{"logit", 2}, {"softmax-c4", 4}} {
		b.Run(tc.name, func(b *testing.B) {
			m := glm.New(20, tc.c, nil)
			rng := rand.New(rand.NewSource(5))
			X := make([][]float64, 100)
			Y := make([]int, 100)
			for i := range X {
				X[i] = make([]float64, 20)
				for j := range X[i] {
					X[i][j] = rng.Float64()
				}
				Y[i] = rng.Intn(tc.c)
			}
			m.Step(X, Y, 0.05)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step(X, Y, 0.05)
			}
		})
	}
}

// BenchmarkEnsembleLearnOp measures one ensemble Learn call on a 100-row
// batch for both paper ensembles (3 VFDT members each). This is the
// acceptance benchmark of the parallel member fan-out; `make bench`
// records it in BENCH_PR3.json.
func BenchmarkEnsembleLearnOp(b *testing.B) {
	schema := stream.Schema{NumFeatures: 10, NumClasses: 2, Name: "bench"}
	builders := []struct {
		name string
		make func() Classifier
	}{
		{"ARF", func() Classifier { return ensemble.NewARF(ensemble.Config{Seed: 1}, schema) }},
		{"LevBag", func() Classifier { return ensemble.NewLevBag(ensemble.Config{Seed: 1}, schema) }},
	}
	for _, bld := range builders {
		b.Run(bld.name, func(b *testing.B) {
			batches := linearBenchBatches(10, 64, 100, 13)
			ens := bld.make()
			for _, bt := range batches {
				ens.Learn(bt) // warm up: grow members, settle detectors
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ens.Learn(batches[i&63])
			}
		})
	}
}

// catBenchBatches materialises planted categorical-concept batches.
func catBenchBatches(count, size int) []stream.Batch {
	gen := synth.NewCategoricalConcept(count*size+size, 8, 0.05, 1)
	out := make([]stream.Batch, count)
	for k := range out {
		b, err := stream.NextBatch(gen, size)
		if err != nil {
			panic(err)
		}
		out[k] = b
	}
	return out
}

// BenchmarkCategoricalScanOp measures one native categorical split scan
// — every seen level as an equality candidate plus the CART-ordered
// subset prefixes — over a warmed 16-level observer.
func BenchmarkCategoricalScanOp(b *testing.B) {
	obs := attrobs.NewCategorical(2, 16)
	rng := rand.New(rand.NewSource(1))
	pre := make([]float64, 2)
	for i := 0; i < 5000; i++ {
		lv, y := rng.Intn(16), rng.Intn(2)
		obs.Observe(float64(lv), y, 1)
		pre[y]++
	}
	buf := attrobs.NewScanBuf(2)
	buf.ReserveLevels(16)
	crit := split.InfoGain{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs.BestSplit(pre, crit, buf)
	}
}

// BenchmarkDMTCategoricalLearnOp measures DMT batch learning on the
// planted categorical stream (equality-bucket candidate updates and the
// categorical split scan included).
func BenchmarkDMTCategoricalLearnOp(b *testing.B) {
	batches := catBenchBatches(256, 100)
	tree := core.New(core.Config{Seed: 1}, synth.NewCategoricalConcept(100, 8, 0.05, 1).Schema())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Learn(batches[i&255])
	}
}

// BenchmarkVFDTCategoricalLearnOp measures Hoeffding-tree batch learning
// with a categorical observer on the planted categorical stream.
func BenchmarkVFDTCategoricalLearnOp(b *testing.B) {
	batches := catBenchBatches(256, 100)
	tree := hoeffding.New(hoeffding.Config{Seed: 1}, synth.NewCategoricalConcept(100, 8, 0.05, 1).Schema())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Learn(batches[i&255])
	}
}

// BenchmarkRacerLearnOp measures one racer Learn on a 100-row SEA
// batch: every arm scores the rows prequentially (windowed error +
// ADWIN on the 0/1 error stream) and trains, then the leader is
// re-elected and a fresh serving snapshot publishes. The per-row cost
// is roughly the sum of the arms' costs plus the scoring overhead —
// what a fixed-model deployment pays to keep the racing option open.
func BenchmarkRacerLearnOp(b *testing.B) {
	batches := seaBatches(64, 100)
	r, err := Race(synth.NewSEA(100, 0.1, 1).Schema(), Arms("glm", "vfdt", "nb"), WithRaceSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, bt := range batches {
		r.Learn(bt)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Learn(batches[i&63])
	}
}

// BenchmarkRacerReadOp measures one Predict against the racer's leader
// snapshot while a background goroutine keeps training all arms — the
// wait-free read path every serving request takes, which must not pay
// for the N-arm training happening behind it.
func BenchmarkRacerReadOp(b *testing.B) {
	batches := seaBatches(64, 100)
	r, err := Race(synth.NewSEA(100, 0.1, 1).Schema(), Arms("glm", "vfdt", "nb"), WithRaceSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, bt := range batches {
		r.Learn(bt)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Learn(batches[i&63])
		}
	}()
	x := batches[0].X[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Predict(x)
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
